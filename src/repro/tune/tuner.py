"""The per-function replication-policy autotuner.

One :func:`tune` call sweeps, per function of each requested program,
the candidate grid of (policy × max-RTL bound × pass order) through the
cached execution layer (`measure_cells` — so a ``repro serve`` daemon's
coalescing and sharded scheduling are reused verbatim when ``server``
is given), scores every candidate against the program's SIMPLE
configuration with the shared Table-5/6 scoring library, and emits a
versioned :class:`~repro.tune.config.TunedConfig` of per-function
winners.

Correctness guarantees:

* the global baseline is always among the candidates, so a per-function
  winner can never score worse than the fixed global configuration —
  tuned ≥ fixed by construction;
* candidates whose replication statistics show a tripped valve are
  *pruned*, never winners (the §5.2 convergence guard makes trips a
  should-not-happen — a pruned candidate is a bug report, not a loss);
* the combined per-program winner is re-run under ``--verify full``
  (the differential execution oracle) before it is allowed into the
  emitted config; a program whose combined candidate fails the gate
  falls back to the untuned baseline and the failure is reported.

Observability: ``tune.candidates.{evaluated,cache_hit,pruned}`` metrics
and one decision-log event per candidate (mode ``"tune"``).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence

from ..benchsuite.scoring import (
    AggregateScore,
    TableScore,
    aggregate_scores,
    candidate_key,
    score_measurement,
)
from ..exec.envelope import CellResult, CellSpec
from ..obs import ReplicationDecision
from ..obs import active as _active_observer
from .config import TunedConfig
from .cutout import Cutout, baseline_candidate, function_names, normalize_rows
from .grid import Candidate, TuneGrid

__all__ = ["tune", "TuneReport", "ProgramTuneReport", "FunctionTuneReport"]


@dataclass
class FunctionTuneReport:
    """How one function's sweep went."""

    function: str
    winner: Candidate
    winner_score: TableScore
    baseline_score: TableScore
    evaluated: int = 0
    cache_hits: int = 0
    pruned: int = 0

    @property
    def improved(self) -> bool:
        return candidate_key(self.winner_score) < candidate_key(self.baseline_score)

    def as_dict(self) -> dict:
        return {
            "function": self.function,
            "winner": {
                "policy": self.winner.policy,
                "max_rtls": self.winner.max_rtls,
                "order": self.winner.order,
            },
            "improved": self.improved,
            "winner_score": self.winner_score.as_dict(),
            "baseline_score": self.baseline_score.as_dict(),
            "evaluated": self.evaluated,
            "cache_hits": self.cache_hits,
            "pruned": self.pruned,
        }


@dataclass
class ProgramTuneReport:
    """One program's tuning outcome: per-function winners + the gate."""

    program: str
    baseline: TableScore
    tuned: TableScore
    fixed: Dict[str, TableScore]
    functions: List[FunctionTuneReport] = field(default_factory=list)
    #: Translation-validation report of the combined winner (``None``
    #: when the combined candidate equals the baseline — nothing to gate).
    verification: Optional[dict] = None
    #: Set when the combined candidate failed the verify gate and the
    #: program fell back to the untuned baseline.
    gate_failure: Optional[str] = None

    def as_dict(self) -> dict:
        return {
            "program": self.program,
            "baseline": self.baseline.as_dict(),
            "tuned": self.tuned.as_dict(),
            "fixed": {name: score.as_dict() for name, score in self.fixed.items()},
            "functions": [f.as_dict() for f in self.functions],
            "verification": self.verification,
            "gate_failure": self.gate_failure,
        }


@dataclass
class TuneReport:
    """Everything one :func:`tune` call produced."""

    target: str
    replication: str
    grid_size: int
    config: TunedConfig
    programs: List[ProgramTuneReport] = field(default_factory=list)
    served: bool = False
    #: Valve/guard accounting summed over every cell the sweep ran
    #: (candidates, baselines, fixed policies, combined winners).  The
    #: §5.2 convergence guard should keep all ``valve_*`` keys at zero.
    replication_totals: Dict[str, int] = field(default_factory=dict)

    @property
    def tuned_aggregate(self) -> AggregateScore:
        return aggregate_scores([p.tuned for p in self.programs])

    @property
    def baseline_aggregate(self) -> AggregateScore:
        return aggregate_scores([p.baseline for p in self.programs])

    def fixed_aggregate(self, policy: str) -> AggregateScore:
        return aggregate_scores([p.fixed[policy] for p in self.programs])

    def as_dict(self) -> dict:
        policies = sorted(
            set().union(*(p.fixed.keys() for p in self.programs))
            if self.programs
            else set()
        )
        return {
            "target": self.target,
            "replication": self.replication,
            "grid_size": self.grid_size,
            "served": self.served,
            "tuned_aggregate": self.tuned_aggregate.as_dict(),
            "baseline_aggregate": self.baseline_aggregate.as_dict(),
            "replication_totals": dict(sorted(self.replication_totals.items())),
            "fixed_aggregates": {
                policy: self.fixed_aggregate(policy).as_dict()
                for policy in policies
            },
            "programs": [p.as_dict() for p in self.programs],
            "config": self.config.as_dict(),
        }


def _metric(name: str, value: int = 1) -> None:
    obs = _active_observer()
    if obs is not None:
        obs.metrics.inc(name, value)


def _decide(cutout_label: str, candidate: Candidate, outcome: str, reason: str = "") -> None:
    obs = _active_observer()
    if obs is not None and obs.decisions.enabled:
        obs.decisions.record(
            ReplicationDecision(
                function=cutout_label,
                block="",
                target="",
                mode="tune",
                policy=candidate.policy,
                outcome=outcome,
                reason=reason or candidate.label,
            )
        )


def _valve_tripped(result: CellResult) -> bool:
    stats = result.replication_stats or {}
    return bool(stats.get("valve_trips"))


def tune(
    programs: Sequence[str],
    target: str = "sparc",
    replication: str = "jumps",
    policy: str = "shortest",
    max_rtls: Optional[int] = None,
    grid: Optional[TuneGrid] = None,
    workers: Optional[int] = None,
    cache=None,
    server: Optional[str] = None,
    verify_gate: bool = True,
    on_progress=None,
) -> TuneReport:
    """Autotune per-function replication for ``programs``.

    Raises :class:`RuntimeError` if any required cell fails outright —
    a tuner that silently drops programs would report a biased aggregate.
    """
    from ..api import measure_cells

    grid = grid or TuneGrid()
    say = on_progress or (lambda _message: None)

    base_specs = {
        program: CellSpec(
            program=program,
            target=target,
            replication=replication,
            policy=policy,
            max_rtls=max_rtls,
        )
        for program in programs
    }
    cutouts = {
        program: [Cutout(program, name) for name in function_names(program)]
        for program in programs
    }

    # ---- round 1: SIMPLE + fixed globals + every candidate cutout ----------
    wanted: Dict[CellSpec, None] = {}

    def want(spec: CellSpec) -> CellSpec:
        wanted.setdefault(spec, None)
        return spec

    simple_specs = {
        program: want(replace(base, replication="none", tuned=None))
        for program, base in base_specs.items()
    }
    fixed_specs = {
        program: {
            fixed_policy: want(replace(base, policy=fixed_policy, tuned=None))
            for fixed_policy in grid.policies
        }
        for program, base in base_specs.items()
    }
    candidate_specs: Dict[str, Dict[Cutout, Dict[Candidate, CellSpec]]] = {}
    for program, base in base_specs.items():
        want(base)  # the global baseline (tuned=None)
        per_cutout: Dict[Cutout, Dict[Candidate, CellSpec]] = {}
        for cutout in cutouts[program]:
            per_candidate = {}
            for candidate in grid.candidates():
                per_candidate[candidate] = want(cutout.spec_for(base, candidate))
            baseline = baseline_candidate(base)
            per_candidate.setdefault(baseline, want(base))
            per_cutout[cutout] = per_candidate
        candidate_specs[program] = per_cutout

    sweep = list(wanted)
    say(
        f"sweeping {len(sweep)} cells "
        f"({len(programs)} programs x {len(grid)} grid points, deduplicated)"
    )
    results = measure_cells(
        sweep, workers=workers, cache=cache, server=server
    )
    by_spec = dict(zip(sweep, results))
    served = bool(getattr(results, "served", False))

    failures = [r for r in by_spec.values() if not r.ok]
    if failures:
        first = failures[0]
        raise RuntimeError(
            f"{len(failures)} tuning cell(s) failed; first: "
            f"{first.spec.label}: {(first.error or '').strip().splitlines()[-1]}"
        )

    # ---- per-function scoring and winner selection -------------------------
    config = TunedConfig(
        target=target,
        replication=replication,
        baseline=Candidate(policy=policy, max_rtls=max_rtls),
        programs={},
    )
    function_reports: Dict[str, List[FunctionTuneReport]] = {}
    for program in programs:
        base = base_specs[program]
        simple = by_spec[simple_specs[program]].measurement
        baseline_result = by_spec[base]
        baseline_score = score_measurement(
            program, baseline_result.measurement, simple
        )
        winners: Dict[str, Candidate] = {}
        reports: List[FunctionTuneReport] = []
        for cutout, per_candidate in candidate_specs[program].items():
            best: Optional[Candidate] = None
            best_score: Optional[TableScore] = None
            evaluated = cache_hits = pruned = 0
            for candidate, spec in per_candidate.items():
                result = by_spec[spec]
                evaluated += 1
                _metric("tune.candidates.evaluated")
                if result.cache_hit:
                    cache_hits += 1
                    _metric("tune.candidates.cache_hit")
                if _valve_tripped(result):
                    pruned += 1
                    _metric("tune.candidates.pruned")
                    _decide(cutout.label, candidate, "pruned", "valve_trip")
                    continue
                score = score_measurement(program, result.measurement, simple)
                _decide(cutout.label, candidate, "evaluated")
                if best_score is None or candidate_key(score) < candidate_key(
                    best_score
                ):
                    best, best_score = candidate, score
            assert best is not None and best_score is not None, (
                f"every candidate of {cutout.label} was pruned"
            )
            _decide(cutout.label, best, "winner")
            winners[cutout.function] = best
            reports.append(
                FunctionTuneReport(
                    function=cutout.function,
                    winner=best,
                    winner_score=best_score,
                    baseline_score=baseline_score,
                    evaluated=evaluated,
                    cache_hits=cache_hits,
                    pruned=pruned,
                )
            )
        rows = normalize_rows(winners, baseline_candidate(base))
        if rows is not None:
            config.programs[program] = {
                function: candidate
                for function, candidate in winners.items()
                if candidate != baseline_candidate(base)
            }
        function_reports[program] = reports

    # ---- round 2: combined winners, under the verify gate ------------------
    combined_specs = {
        program: replace(
            base_specs[program],
            tuned=config.tuned_rows(program),
            verify="full" if verify_gate and config.tuned_rows(program) else None,
        )
        for program in programs
    }
    to_run = [
        spec
        for program, spec in combined_specs.items()
        if spec not in by_spec
    ]
    if to_run:
        say(
            f"verifying {len(to_run)} combined winner(s) "
            f"({'full differential oracle' if verify_gate else 'no gate'})"
        )
        combined_results = measure_cells(
            to_run, workers=workers, cache=cache, server=server
        )
        by_spec.update(zip(to_run, combined_results))

    totals: Dict[str, int] = {}
    for result in by_spec.values():
        for key in (
            "valve_trips",
            "valve_block_trips",
            "valve_budget_trips",
            "guard_stops",
        ):
            totals[key] = totals.get(key, 0) + int(
                (result.replication_stats or {}).get(key, 0)
            )

    report = TuneReport(
        target=target,
        replication=replication,
        grid_size=len(grid),
        config=config,
        served=served,
        replication_totals=totals,
    )
    for program in programs:
        base = base_specs[program]
        simple = by_spec[simple_specs[program]].measurement
        baseline_score = score_measurement(program, by_spec[base].measurement, simple)
        combined = by_spec[combined_specs[program]]
        verification = combined.verification
        gate_failure = None
        if not combined.ok:
            # The combined candidate failed (in practice: the verify
            # gate's differential oracle): fall back to the baseline.
            gate_failure = (combined.error or "unknown").strip().splitlines()[-1]
            config.programs.pop(program, None)
            tuned_score = baseline_score
        else:
            tuned_score = score_measurement(program, combined.measurement, simple)
        report.programs.append(
            ProgramTuneReport(
                program=program,
                baseline=baseline_score,
                tuned=tuned_score,
                fixed={
                    fixed_policy: score_measurement(
                        program, by_spec[spec].measurement, simple
                    )
                    for fixed_policy, spec in fixed_specs[program].items()
                },
                functions=function_reports[program],
                verification=verification,
                gate_failure=gate_failure,
            )
        )
        say(
            f"{program}: tuned dynamic {report.programs[-1].tuned.formatted()[1]}"
            f" (baseline {baseline_score.formatted()[1]})"
        )
    return report
