"""The versioned tuned-config JSON the autotuner emits.

The file is the tuner's one durable artifact: per program, per function,
the winning (policy, max_rtls, order).  ``repro --tuned-config FILE``
replays it through :class:`repro.opt.driver.OptimizationConfig`
overrides, and :func:`repro.tune.tuner.tune` writes it.  The format is
versioned and strictly validated — a config written by a future
incompatible tuner must fail loudly, not silently detune.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Optional, Tuple

from ..opt.driver import PASS_ORDERS, FunctionTuning
from .grid import Candidate

__all__ = [
    "TUNED_CONFIG_VERSION",
    "TunedConfig",
    "TunedConfigError",
    "load_tuned_config",
]

TUNED_CONFIG_VERSION = 1


class TunedConfigError(ValueError):
    """A malformed or incompatible tuned-config file."""


@dataclass
class TunedConfig:
    """Per-function tunings for a set of programs, plus their context."""

    target: str = "sparc"
    replication: str = "jumps"
    #: The global configuration the overrides were tuned against.
    baseline: Candidate = field(default_factory=Candidate)
    #: ``programs[program][function]`` → winning candidate.
    programs: Dict[str, Dict[str, Candidate]] = field(default_factory=dict)
    version: int = TUNED_CONFIG_VERSION

    def overrides_for(self, program: str) -> Dict[str, FunctionTuning]:
        """Driver-ready overrides for one program (empty if untuned)."""
        return {
            function: candidate.as_tuning()
            for function, candidate in self.programs.get(program, {}).items()
        }

    def tuned_rows(
        self, program: str
    ) -> Optional[Tuple[Tuple[str, str, Optional[int], str], ...]]:
        """The canonical ``CellSpec.tuned`` value for one program."""
        from .cutout import normalize_rows

        return normalize_rows(self.programs.get(program, {}), self.baseline)

    def as_dict(self) -> dict:
        return {
            "version": self.version,
            "target": self.target,
            "replication": self.replication,
            "baseline": {
                "policy": self.baseline.policy,
                "max_rtls": self.baseline.max_rtls,
            },
            "programs": {
                program: {
                    function: {
                        "policy": candidate.policy,
                        "max_rtls": candidate.max_rtls,
                        "order": candidate.order,
                    }
                    for function, candidate in sorted(functions.items())
                }
                for program, functions in sorted(self.programs.items())
            },
        }

    def save(self, path) -> None:
        Path(path).write_text(json.dumps(self.as_dict(), indent=2) + "\n")


def _candidate_from_dict(raw: object, where: str) -> Candidate:
    from ..api import POLICIES

    if not isinstance(raw, dict):
        raise TunedConfigError(f"{where}: expected an object, got {type(raw).__name__}")
    policy = raw.get("policy", "shortest")
    max_rtls = raw.get("max_rtls")
    order = raw.get("order", "standard")
    unknown = set(raw) - {"policy", "max_rtls", "order"}
    if unknown:
        raise TunedConfigError(f"{where}: unknown keys {sorted(unknown)}")
    if policy not in POLICIES:
        raise TunedConfigError(f"{where}: unknown policy {policy!r}")
    if not (max_rtls is None or (isinstance(max_rtls, int) and max_rtls >= 1)):
        raise TunedConfigError(f"{where}: max_rtls must be a positive int or null")
    if order not in PASS_ORDERS:
        raise TunedConfigError(f"{where}: unknown order {order!r}")
    return Candidate(policy=policy, max_rtls=max_rtls, order=order)


def load_tuned_config(path) -> TunedConfig:
    """Parse and validate a tuned-config file."""
    try:
        raw = json.loads(Path(path).read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise TunedConfigError(f"cannot read tuned config {path}: {exc}") from None
    if not isinstance(raw, dict):
        raise TunedConfigError("tuned config must be a JSON object")
    version = raw.get("version")
    if version != TUNED_CONFIG_VERSION:
        raise TunedConfigError(
            f"tuned config version {version!r} is not supported "
            f"(expected {TUNED_CONFIG_VERSION})"
        )
    baseline_raw = raw.get("baseline", {})
    baseline = _candidate_from_dict(baseline_raw, "baseline")
    if baseline.order != "standard":
        raise TunedConfigError("baseline order must be 'standard'")
    programs_raw = raw.get("programs", {})
    if not isinstance(programs_raw, dict):
        raise TunedConfigError("'programs' must be an object")
    programs: Dict[str, Dict[str, Candidate]] = {}
    for program, functions_raw in programs_raw.items():
        if not isinstance(functions_raw, dict):
            raise TunedConfigError(f"programs[{program!r}] must be an object")
        programs[program] = {
            function: _candidate_from_dict(
                candidate_raw, f"programs[{program!r}][{function!r}]"
            )
            for function, candidate_raw in functions_raw.items()
        }
    return TunedConfig(
        target=raw.get("target", "sparc"),
        replication=raw.get("replication", "jumps"),
        baseline=baseline,
        programs=programs,
        version=version,
    )
