"""The autotuner's candidate space.

A :class:`Candidate` is one per-function replication tuning the sweep
evaluates: a step-2 policy, a §6 sequence-length bound, and a pass
ordering (see :data:`repro.opt.driver.PASS_ORDERS`).  A :class:`TuneGrid`
enumerates the cross product; the defaults cover the paper's three
policies, a small geometric ladder of bounds, and all three orderings —
the fixed global configuration is always among the candidates, so the
per-function winner can never lose to it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional, Sequence, Tuple

from ..opt.driver import PASS_ORDERS, FunctionTuning

__all__ = ["Candidate", "TuneGrid", "DEFAULT_BOUNDS"]

#: §6 sequence-length bounds swept per function; ``None`` is unbounded.
DEFAULT_BOUNDS: Tuple[Optional[int], ...] = (None, 4, 8, 16)

#: Step-2 policy names, in :data:`repro.api.POLICIES` vocabulary.
DEFAULT_POLICIES: Tuple[str, ...] = ("shortest", "returns", "loops")


@dataclass(frozen=True)
class Candidate:
    """One point of the per-function sweep, in wire vocabulary.

    ``policy`` is a :data:`repro.api.POLICIES` name (strings travel in
    :class:`~repro.exec.envelope.CellSpec` tuned rows and in the tuned
    config JSON; the enum never crosses a process boundary).
    """

    policy: str = "shortest"
    max_rtls: Optional[int] = None
    order: str = "standard"

    def as_tuning(self) -> FunctionTuning:
        from ..api import POLICIES

        return FunctionTuning(
            policy=POLICIES[self.policy],
            max_rtls=self.max_rtls,
            order=self.order,
        )

    def as_row(self, function: str) -> Tuple[str, str, Optional[int], str]:
        """The spec's ``tuned`` row for ``function`` under this candidate."""
        return (function, self.policy, self.max_rtls, self.order)

    @property
    def label(self) -> str:
        bound = "inf" if self.max_rtls is None else str(self.max_rtls)
        return f"{self.policy}/{bound}/{self.order}"


@dataclass(frozen=True)
class TuneGrid:
    """The candidate cross product one tuning run sweeps per function."""

    policies: Tuple[str, ...] = DEFAULT_POLICIES
    bounds: Tuple[Optional[int], ...] = DEFAULT_BOUNDS
    orders: Tuple[str, ...] = PASS_ORDERS

    def __post_init__(self) -> None:
        from ..api import POLICIES

        for policy in self.policies:
            if policy not in POLICIES:
                raise ValueError(f"unknown policy {policy!r}")
        for bound in self.bounds:
            if bound is not None and (not isinstance(bound, int) or bound < 1):
                raise ValueError(f"max_rtls bound must be >= 1, got {bound!r}")
        for order in self.orders:
            if order not in PASS_ORDERS:
                raise ValueError(
                    f"order must be one of {'/'.join(PASS_ORDERS)}, got {order!r}"
                )

    def __len__(self) -> int:
        return len(self.policies) * len(self.bounds) * len(self.orders)

    def candidates(self) -> Iterator[Candidate]:
        """Every grid point, in deterministic sweep order."""
        for policy in self.policies:
            for bound in self.bounds:
                for order in self.orders:
                    yield Candidate(policy=policy, max_rtls=bound, order=order)

    @classmethod
    def parse(
        cls,
        policies: Optional[Sequence[str]] = None,
        bounds: Optional[Sequence[Optional[int]]] = None,
        orders: Optional[Sequence[str]] = None,
    ) -> "TuneGrid":
        """Build a grid from CLI-style overrides (``None`` = default)."""
        return cls(
            policies=tuple(policies) if policies else DEFAULT_POLICIES,
            bounds=tuple(bounds) if bounds else DEFAULT_BOUNDS,
            orders=tuple(orders) if orders else PASS_ORDERS,
        )
