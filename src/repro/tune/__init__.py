"""repro.tune — the per-function replication-policy autotuner.

The paper fixes one global JUMPS policy for the whole evaluation; the
autotuner instead searches, per function, over (policy × §6 RTL bound ×
pass ordering) and emits a versioned tuned-config JSON the optimization
driver replays through per-function overrides.  See
:mod:`repro.tune.tuner` for the sweep, :mod:`repro.tune.grid` for the
candidate space, :mod:`repro.tune.cutout` for function isolation, and
:mod:`repro.tune.config` for the artifact format.
"""

from .config import (
    TUNED_CONFIG_VERSION,
    TunedConfig,
    TunedConfigError,
    load_tuned_config,
)
from .cutout import Cutout, baseline_candidate, function_names, normalize_rows
from .grid import DEFAULT_BOUNDS, Candidate, TuneGrid
from .tuner import FunctionTuneReport, ProgramTuneReport, TuneReport, tune

__all__ = [
    "TUNED_CONFIG_VERSION",
    "TunedConfig",
    "TunedConfigError",
    "load_tuned_config",
    "Cutout",
    "baseline_candidate",
    "function_names",
    "normalize_rows",
    "DEFAULT_BOUNDS",
    "Candidate",
    "TuneGrid",
    "FunctionTuneReport",
    "ProgramTuneReport",
    "TuneReport",
    "tune",
]
