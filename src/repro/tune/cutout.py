"""Cutting a program's functions into isolated matrix cells.

The tuner scores candidates *per function*: ``optimize_function`` treats
every function independently, so overriding one function's tuning while
the rest stay at the global baseline isolates that function's
contribution to the program's Table-5/6 metrics.  A :class:`Cutout`
names one such isolation — (program, function) — and builds the
:class:`~repro.exec.envelope.CellSpec` for any candidate, normalizing
candidates identical to the global baseline to ``tuned=None`` so they
share the baseline's cache entry (and the daemon's single-flight slot).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..exec.envelope import CellSpec
from .grid import Candidate

__all__ = ["Cutout", "function_names", "normalize_rows", "baseline_candidate"]


def function_names(program: str) -> List[str]:
    """The functions of a benchmark (or mini-C source), in program order.

    The front end is cheap relative to one measured cell, so the tuner
    compiles once up front to discover the cut points.
    """
    from ..frontend.codegen import compile_c

    source, _stdin = CellSpec(program=program).resolve()
    compiled = compile_c(source)
    return list(compiled.functions.keys())


def baseline_candidate(spec: CellSpec) -> Candidate:
    """The global configuration of ``spec``, viewed as a candidate."""
    return Candidate(policy=spec.policy, max_rtls=spec.max_rtls, order="standard")


def normalize_rows(
    rows: Dict[str, Candidate], baseline: Candidate
) -> Optional[Tuple[Tuple[str, str, Optional[int], str], ...]]:
    """Canonical ``CellSpec.tuned`` value for per-function choices.

    Rows equal to the global baseline are dropped (the driver's
    ``tuning_for`` falls back to the globals anyway), and no surviving
    rows means ``None`` — the untuned spec, byte-identical cache key to
    the baseline run.  Survivors are sorted by function name so equal
    choices always produce the same key.
    """
    surviving = {
        function: candidate
        for function, candidate in rows.items()
        if candidate != baseline
    }
    if not surviving:
        return None
    return tuple(
        surviving[function].as_row(function) for function in sorted(surviving)
    )


@dataclass(frozen=True)
class Cutout:
    """One (program, function) isolation cell of the tuning sweep."""

    program: str
    function: str

    def spec_for(self, base: CellSpec, candidate: Candidate) -> CellSpec:
        """``base`` with only this function overridden to ``candidate``."""
        from dataclasses import replace

        tuned = normalize_rows(
            {self.function: candidate}, baseline_candidate(base)
        )
        return replace(base, program=self.program, tuned=tuned)

    @property
    def label(self) -> str:
        return f"{self.program}::{self.function}"
