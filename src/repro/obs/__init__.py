"""repro.obs — tracing, metrics and the replication decision log.

The unified observability subsystem (zero external dependencies):

* :mod:`repro.obs.tracer` — nested spans with monotonic timing;
* :mod:`repro.obs.metrics` — counters, gauges, fixed-bucket histograms,
  mergeable across worker processes;
* :mod:`repro.obs.decisions` — one structured event per candidate jump
  the replication engine examined (accept / reject / rollback + reason);
* :mod:`repro.obs.observer` — the ambient bundle instrumented code
  talks to (``active()`` is the single hot-path check);
* :mod:`repro.obs.sink` — the JSONL trace writer/reader behind
  ``REPRO_TRACE=path`` and the ``--trace`` CLI flag;
* :mod:`repro.obs.digest` — aggregation for ``repro trace`` and the
  terminal summary;
* :mod:`repro.obs.passes` — per-pass timing records (the storage behind
  the ``repro.opt.instrument`` compatibility shim).

Quickstart::

    from repro.obs import observing

    with observing(jsonl_path="out.jsonl") as obs:
        compile_and_measure("sieve", replication="jumps")
    print(obs.metrics.counters["replication.accepted"])
"""

from .decisions import DecisionLog, ReplicationDecision
from .digest import aggregate_spans, decision_digest, split_events
from .metrics import DEFAULT_BUCKETS, MetricsRegistry
from .observer import Observer, active, deactivate, install, observing
from .passes import PassRecord, PassTimeline, jump_count, rtl_count
from .sink import (
    TRACE_SCHEMA_VERSION,
    read_events,
    trace_path_from_env,
    write_events,
)
from .tracer import Span, Tracer

__all__ = [
    "DecisionLog",
    "ReplicationDecision",
    "aggregate_spans",
    "decision_digest",
    "split_events",
    "DEFAULT_BUCKETS",
    "MetricsRegistry",
    "Observer",
    "active",
    "deactivate",
    "install",
    "observing",
    "PassRecord",
    "PassTimeline",
    "jump_count",
    "rtl_count",
    "TRACE_SCHEMA_VERSION",
    "read_events",
    "trace_path_from_env",
    "write_events",
    "Span",
    "Tracer",
]
