"""The metrics registry: counters, gauges and fixed-bucket histograms.

Metrics are named by dotted strings (``"exec.cache.hits"``,
``"replication.sequence_rtls"``).  The registry is deliberately plain —
dicts of numbers — so a snapshot crosses process boundaries inside the
result envelopes of the parallel execution layer and merges
associatively on the way back:

* counters and histograms add;
* gauges keep the latest value (last merge wins).

Histograms use fixed bucket upper bounds (Prometheus-style cumulative
counts are *not* used; each bucket counts observations within its own
range, the final slot catching everything above the last bound), which
keeps merging a per-slot addition with no re-bucketing.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Dict, Optional, Sequence

__all__ = ["MetricsRegistry", "DEFAULT_BUCKETS"]

#: Default histogram bounds — tuned for the paper's small quantities
#: (replication sequence lengths in RTLs/blocks, pass iteration counts).
DEFAULT_BUCKETS = (1, 2, 4, 8, 16, 32, 64, 128, 256)


class MetricsRegistry:
    """A process-local bag of counters, gauges and histograms."""

    def __init__(self) -> None:
        self.counters: Dict[str, float] = {}
        self.gauges: Dict[str, float] = {}
        #: name -> {"buckets": [bounds...], "counts": [len(bounds)+1 slots],
        #:          "sum": float, "count": int}
        self.histograms: Dict[str, dict] = {}

    # --- instruments ----------------------------------------------------------

    def inc(self, name: str, amount: float = 1) -> None:
        """Add ``amount`` to counter ``name`` (created at zero)."""
        self.counters[name] = self.counters.get(name, 0) + amount

    def set_gauge(self, name: str, value: float) -> None:
        """Set gauge ``name`` to ``value``."""
        self.gauges[name] = value

    def observe(
        self,
        name: str,
        value: float,
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> None:
        """Record one observation into histogram ``name``.

        ``buckets`` fixes the bounds on first use; later observations
        reuse the stored bounds (a changed ``buckets`` argument is
        ignored so merges stay well-defined).
        """
        hist = self.histograms.get(name)
        if hist is None:
            bounds = list(buckets)
            hist = self.histograms[name] = {
                "buckets": bounds,
                "counts": [0] * (len(bounds) + 1),
                "sum": 0.0,
                "count": 0,
            }
        hist["counts"][bisect_left(hist["buckets"], value)] += 1
        hist["sum"] += value
        hist["count"] += 1

    # --- export / merge -------------------------------------------------------

    def snapshot(self) -> dict:
        """A deep plain-data copy, safe to pickle/JSON and to mutate."""
        return {
            "counters": dict(self.counters),
            "gauges": dict(self.gauges),
            "histograms": {
                name: {
                    "buckets": list(h["buckets"]),
                    "counts": list(h["counts"]),
                    "sum": h["sum"],
                    "count": h["count"],
                }
                for name, h in self.histograms.items()
            },
        }

    def merge_snapshot(self, snap: Optional[dict]) -> None:
        """Fold another registry's :meth:`snapshot` into this one."""
        if not snap:
            return
        for name, value in (snap.get("counters") or {}).items():
            self.inc(name, value)
        for name, value in (snap.get("gauges") or {}).items():
            self.set_gauge(name, value)
        for name, other in (snap.get("histograms") or {}).items():
            mine = self.histograms.get(name)
            if mine is None:
                self.histograms[name] = {
                    "buckets": list(other["buckets"]),
                    "counts": list(other["counts"]),
                    "sum": other["sum"],
                    "count": other["count"],
                }
                continue
            if mine["buckets"] != list(other["buckets"]):
                raise ValueError(
                    f"histogram {name!r} bucket bounds differ: "
                    f"{mine['buckets']} vs {other['buckets']}"
                )
            mine["counts"] = [
                a + b for a, b in zip(mine["counts"], other["counts"])
            ]
            mine["sum"] += other["sum"]
            mine["count"] += other["count"]

    def is_empty(self) -> bool:
        return not (self.counters or self.gauges or self.histograms)
