"""Per-pass timing records — the storage behind pass instrumentation.

This is the observability-layer home of what PR 1 introduced as
``repro.opt.instrument``: one :class:`PassRecord` per optimizer-pass
invocation (wall time plus an RTL / unconditional-jump census delta),
accumulated and aggregated by a :class:`PassTimeline`.
``repro.opt.instrument.PassInstrumentation`` remains as a thin
compatibility shim subclassing :class:`PassTimeline`.

Everything here is plain data (dataclasses of ints/floats/strings) so
the records travel unharmed through ``pickle`` — the parallel execution
layer ships them back from worker processes inside result envelopes.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional

from ..cfg.block import Function
from ..rtl.insn import Jump

__all__ = ["PassRecord", "PassTimeline", "rtl_count", "jump_count"]


def rtl_count(func: Function) -> int:
    """Number of RTLs currently in ``func``."""
    return sum(len(block.insns) for block in func.blocks)


def jump_count(func: Function) -> int:
    """Number of unconditional jumps currently in ``func``."""
    return sum(
        1 for block in func.blocks for insn in block.insns if isinstance(insn, Jump)
    )


@dataclass
class PassRecord:
    """One pass invocation: wall time and what it did to the code."""

    name: str
    seconds: float
    #: RTL count after minus before (negative = the pass shrank the code).
    rtl_delta: int
    #: Unconditional jumps removed (before minus after; negative = added).
    jumps_removed: int
    #: Whether the pass reported a change (where it reports one).
    changed: bool


@dataclass
class PassTimeline:
    """Accumulates :class:`PassRecord` entries across passes and functions."""

    records: List[PassRecord] = field(default_factory=list)

    def record(
        self,
        name: str,
        seconds: float,
        rtl_delta: int,
        jumps_removed: int,
        changed: bool,
    ) -> None:
        self.records.append(
            PassRecord(name, seconds, rtl_delta, jumps_removed, changed)
        )

    def merge(self, other: "PassTimeline") -> None:
        self.records.extend(other.records)

    @property
    def total_seconds(self) -> float:
        return sum(r.seconds for r in self.records)

    def aggregate(self) -> Dict[str, Dict[str, float]]:
        """Aggregate records by pass name, in first-seen order.

        Each value carries ``calls``, ``changed`` (invocations reporting a
        change), ``seconds``, ``rtl_delta`` and ``jumps_removed`` summed
        over all invocations of that pass.
        """
        result: Dict[str, Dict[str, float]] = {}
        for rec in self.records:
            agg = result.setdefault(
                rec.name,
                {
                    "calls": 0,
                    "changed": 0,
                    "seconds": 0.0,
                    "rtl_delta": 0,
                    "jumps_removed": 0,
                },
            )
            agg["calls"] += 1
            agg["changed"] += 1 if rec.changed else 0
            agg["seconds"] += rec.seconds
            agg["rtl_delta"] += rec.rtl_delta
            agg["jumps_removed"] += rec.jumps_removed
        return result

    def as_dicts(self) -> List[dict]:
        """The raw records as plain dictionaries (JSON/pickle friendly)."""
        return [asdict(rec) for rec in self.records]

    @classmethod
    def from_dicts(cls, rows: Optional[List[dict]]) -> "PassTimeline":
        inst = cls()
        for row in rows or []:
            inst.records.append(PassRecord(**row))
        return inst
