"""The zero-dependency span tracer.

A :class:`Span` is one timed region of work — a front-end phase, an
optimizer pass, one of the six JUMPS steps — with a name, monotonic
start/duration, free-form attributes and a parent, so spans nest into a
tree.  A :class:`Tracer` hands out spans as context managers::

    tracer = Tracer()
    with tracer.span("opt.function", function="main"):
        with tracer.span("opt.dead_code") as span:
            ...
            span.set(changed=True)

Completed spans are plain dataclasses of ints/floats/strings/dicts, so a
whole trace travels unharmed through ``pickle`` (the parallel execution
layer ships worker traces back inside result envelopes) and serializes
to JSON without custom encoders.

A disabled tracer (``Tracer(enabled=False)``) hands out a shared no-op
span and records nothing; the hot paths in the replication engine rely
on this costing nearly nothing.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from time import perf_counter
from typing import Any, Dict, List, Optional

__all__ = ["Span", "Tracer", "NULL_SPAN"]


@dataclass
class Span:
    """One completed (or in-flight) timed region."""

    #: Dotted region name, e.g. ``"opt.dead_code"`` or ``"jumps.step3"``.
    name: str
    #: Span id, unique within one tracer.
    span_id: int
    #: Id of the enclosing span, or ``None`` for a root span.
    parent_id: Optional[int]
    #: Seconds since the tracer's epoch (monotonic clock).
    start: float
    #: Wall seconds; filled in when the span closes.
    duration: float = 0.0
    #: Free-form attributes (JSON-safe values only, by convention).
    attrs: Dict[str, Any] = field(default_factory=dict)

    def set(self, **attrs: Any) -> "Span":
        """Attach attributes to the span; returns the span for chaining."""
        self.attrs.update(attrs)
        return self

    def as_dict(self) -> dict:
        return asdict(self)


class _NullSpan:
    """Shared no-op stand-in handed out by disabled tracers."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> None:
        return None

    def set(self, **attrs: Any) -> "_NullSpan":
        return self


NULL_SPAN = _NullSpan()


class _ActiveSpan:
    """Context-manager wrapper closing a :class:`Span` on exit."""

    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: "Tracer", span: Span) -> None:
        self._tracer = tracer
        self._span = span

    def __enter__(self) -> Span:
        return self._span

    def __exit__(self, *exc) -> None:
        self._tracer._close(self._span)

    def set(self, **attrs: Any) -> Span:
        return self._span.set(**attrs)


class Tracer:
    """Collects nested spans against one monotonic epoch."""

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self.epoch = perf_counter()
        self.spans: List[Span] = []
        self._stack: List[int] = []
        self._next_id = 0

    def span(self, name: str, **attrs: Any):
        """Open a nested span; use as a context manager."""
        if not self.enabled:
            return NULL_SPAN
        span = Span(
            name=name,
            span_id=self._next_id,
            parent_id=self._stack[-1] if self._stack else None,
            start=perf_counter() - self.epoch,
            attrs=dict(attrs),
        )
        self._next_id += 1
        self.spans.append(span)
        self._stack.append(span.span_id)
        return _ActiveSpan(self, span)

    def record(
        self,
        name: str,
        duration: float,
        start: Optional[float] = None,
        **attrs: Any,
    ) -> Optional[Span]:
        """Append an already-completed span.

        For regions timed outside the context-manager stack — e.g. an
        async job whose lifetime spans many event-loop turns, where
        ``with tracer.span(...)`` would interleave wrongly with other
        concurrent jobs.  ``start`` is seconds since the tracer's epoch;
        when omitted the span is back-dated so it *ends* now.  The span
        becomes a child of the currently open span, if any.
        """
        if not self.enabled:
            return None
        if start is None:
            start = (perf_counter() - self.epoch) - duration
        span = Span(
            name=name,
            span_id=self._next_id,
            parent_id=self._stack[-1] if self._stack else None,
            start=start,
            duration=duration,
            attrs=dict(attrs),
        )
        self._next_id += 1
        self.spans.append(span)
        return span

    def _close(self, span: Span) -> None:
        span.duration = (perf_counter() - self.epoch) - span.start
        # Close any spans left open below this one (defensive: an
        # exception may have skipped their __exit__).
        while self._stack and self._stack[-1] != span.span_id:
            self._stack.pop()
        if self._stack:
            self._stack.pop()

    # --- export / merge -------------------------------------------------------

    def as_dicts(self) -> List[dict]:
        """Completed spans as plain dictionaries (JSON/pickle friendly)."""
        return [span.as_dict() for span in self.spans]

    def merge_dicts(self, rows: Optional[List[dict]]) -> None:
        """Graft spans exported by another tracer (e.g. a worker process).

        Ids are re-based so they cannot collide with local spans; the
        merged spans keep their relative tree structure and become roots
        under the currently open span, if any.
        """
        rows = rows or []
        if not rows:
            return
        base = self._next_id
        attach_to = self._stack[-1] if self._stack else None
        remap = {row["span_id"]: base + i for i, row in enumerate(rows)}
        for row in rows:
            parent = row.get("parent_id")
            self.spans.append(
                Span(
                    name=row["name"],
                    span_id=remap[row["span_id"]],
                    parent_id=remap.get(parent, attach_to),
                    start=row["start"],
                    duration=row["duration"],
                    attrs=dict(row.get("attrs") or {}),
                )
            )
        self._next_id = base + len(rows)
