"""Pure aggregation of trace events into digest-ready structures.

The JSONL sink writes flat events; the terminal renderers in
:mod:`repro.report` want aggregates — a flame-style span tree (calls /
total / self time per span path) and a decision-log digest (outcomes,
reasons, per-function replication cost).  This module is the pure-data
middle layer both the ``repro trace`` subcommand and the post-run
terminal summary share.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

__all__ = ["split_events", "aggregate_spans", "decision_digest"]


def split_events(
    events: List[dict],
) -> Tuple[List[dict], List[dict], dict]:
    """Partition raw JSONL events into (spans, decisions, merged metrics)."""
    from .metrics import MetricsRegistry

    spans: List[dict] = []
    decisions: List[dict] = []
    metrics = MetricsRegistry()
    for event in events:
        kind = event.get("event")
        if kind == "span":
            spans.append(event)
        elif kind == "replication.decision":
            decisions.append(event)
        elif kind == "metrics":
            metrics.merge_snapshot(event.get("data"))
    return spans, decisions, metrics.snapshot()


def aggregate_spans(spans: List[dict]) -> List[dict]:
    """Fold spans into a tree aggregated by name path.

    Spans with the same name under the same aggregated parent share one
    node.  Each node carries ``name``, ``calls``, ``total`` (summed
    duration), ``self`` (total minus the children's total) and
    ``children`` (list of nodes, heaviest first).  Roots are returned
    heaviest first.
    """
    by_id: Dict[int, dict] = {
        span["span_id"]: span for span in spans if "span_id" in span
    }

    # One aggregated node per (parent node identity, name); roots key on
    # a parent identity of None.  Memoized per span id so each span's
    # chain of parents resolves once.
    nodes: Dict[Tuple[Optional[int], str], dict] = {}
    node_of_span: Dict[int, dict] = {}

    def node_for(span: dict) -> dict:
        cached = node_of_span.get(span["span_id"])
        if cached is not None:
            return cached
        parent = span.get("parent_id")
        parent_node: Optional[dict] = None
        if parent is not None and parent in by_id:
            parent_node = node_for(by_id[parent])
        key = (id(parent_node) if parent_node is not None else None, span["name"])
        node = nodes.get(key)
        if node is None:
            node = {
                "name": span["name"],
                "calls": 0,
                "total": 0.0,
                "self": 0.0,
                "children": [],
            }
            nodes[key] = node
            if parent_node is not None:
                parent_node["children"].append(node)
        node_of_span[span["span_id"]] = node
        return node

    for span in spans:
        if "span_id" not in span:
            continue
        node = node_for(span)
        node["calls"] += 1
        node["total"] += float(span.get("duration") or 0.0)

    roots = [node for (parent, _), node in nodes.items() if parent is None]

    def finish(node: dict) -> None:
        child_total = sum(c["total"] for c in node["children"])
        node["self"] = max(0.0, node["total"] - child_total)
        node["children"].sort(key=lambda c: -c["total"])
        for child in node["children"]:
            finish(child)

    for root in roots:
        finish(root)
    roots.sort(key=lambda n: -n["total"])
    return roots


def decision_digest(decisions: List[dict]) -> dict:
    """Summarize decision-log entries for the terminal digest.

    Returns plain data: totals by outcome, failure reasons, sequence
    kinds, per-policy outcomes, and the per-function replication bill
    (jumps replaced / RTLs replicated / rollbacks), heaviest first.
    """
    outcomes: Dict[str, int] = {}
    reasons: Dict[str, int] = {}
    kinds: Dict[str, int] = {}
    policies: Dict[str, Dict[str, int]] = {}
    functions: Dict[str, dict] = {}
    total_rtls = 0
    total_copies = 0
    for decision in decisions:
        outcome = decision.get("outcome", "?")
        outcomes[outcome] = outcomes.get(outcome, 0) + 1
        reason = decision.get("reason") or ""
        if reason:
            reasons[reason] = reasons.get(reason, 0) + 1
        kind = decision.get("sequence_kind") or ""
        if kind:
            kinds[kind] = kinds.get(kind, 0) + 1
        policy = decision.get("policy", "?")
        per_policy = policies.setdefault(policy, {})
        per_policy[outcome] = per_policy.get(outcome, 0) + 1
        row = functions.setdefault(
            decision.get("function", "?"),
            {"decisions": 0, "accepted": 0, "rtls": 0, "rollbacks": 0},
        )
        row["decisions"] += 1
        rollbacks = int(decision.get("rollbacks") or 0)
        row["rollbacks"] += rollbacks
        if outcome in ("accepted", "redundant"):
            row["accepted"] += 1
        if outcome == "accepted":
            rtls = int(decision.get("sequence_rtls") or 0)
            row["rtls"] += rtls
            total_rtls += rtls
            total_copies += len(decision.get("copies") or [])
    ranked = sorted(
        functions.items(), key=lambda item: (-item[1]["rtls"], item[0])
    )
    return {
        "total": len(decisions),
        "outcomes": outcomes,
        "reasons": reasons,
        "sequence_kinds": kinds,
        "policies": policies,
        "functions": [{"function": name, **row} for name, row in ranked],
        "rtls_replicated": total_rtls,
        "blocks_copied": total_copies,
    }
