"""The replication decision log.

The paper's evaluation (Tables 4–6) is an exercise in *attribution*:
which replications removed which jumps at what code-size cost.  The
decision log captures exactly that — one structured
:class:`ReplicationDecision` per candidate jump the engine examined,
recording where the jump sat, which policy arbitrated the step-2
sequence options, how long the chosen sequence was, and whether the
replication was accepted, rejected or rolled back (and why).

Outcomes
--------

``accepted``     the jump was replaced by a replicated sequence
``redundant``    the jump targeted its fall-through and was deleted
``rejected``     every candidate sequence failed; the jump stays
``kept``         the jump was examined but never attempted (filtered,
                 self-loop, unresolved or stale target)

Reasons (for ``rejected``/``kept``, or the rollback note on an
``accepted`` decision that succeeded on its second sequence):

``irreducible``          step-6 reducibility check rolled the copy back
``max_rtls``             the §6 sequence-length bound refused the copy
``loop_completion``      step-3 completion grew pathologically
``inadmissible``         the LOOPS mode restriction declined it
``no_candidates``        no sequence to a return or the fall-through
``filtered``             the profile-guided jump filter declined it
``self_loop``            the jump targets its own block
``unresolved_target``    the jump target label does not exist
``stale_target``         target created mid-sweep; retried next sweep
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import List, Optional, Set

__all__ = ["ReplicationDecision", "DecisionLog"]


@dataclass
class ReplicationDecision:
    """One candidate jump the replication engine examined."""

    function: str
    #: Label of the block whose terminating jump was examined.
    block: str
    #: Label the jump targeted.
    target: str
    #: Engine configuration: ``"jumps"`` or ``"loops"``.
    mode: str
    #: Step-2 policy: ``"shortest"``, ``"returns"`` or ``"loops"``.
    policy: str
    #: ``accepted`` / ``redundant`` / ``rejected`` / ``kept``.
    outcome: str
    #: Failure reason (see module docstring); empty when accepted clean.
    reason: str = ""
    #: Which sequence kind won: ``"returns"``, ``"fallthrough"`` or ``""``.
    sequence_kind: str = ""
    #: Length of the chosen (or last tried) sequence.
    sequence_blocks: int = 0
    sequence_rtls: int = 0
    #: Candidate sequences tried before the outcome.
    attempts: int = 0
    #: Step-6 rollbacks performed while deciding this jump.
    rollbacks: int = 0
    #: Labels of the replica blocks created (accepted decisions only).
    copies: List[str] = field(default_factory=list)

    def as_dict(self) -> dict:
        return asdict(self)


class DecisionLog:
    """Accumulates decisions; disabled logs drop them with no storage."""

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self.decisions: List[ReplicationDecision] = []

    def record(self, decision: ReplicationDecision) -> None:
        if self.enabled:
            self.decisions.append(decision)

    def __len__(self) -> int:
        return len(self.decisions)

    def as_dicts(self) -> List[dict]:
        return [d.as_dict() for d in self.decisions]

    def merge_dicts(self, rows: Optional[List[dict]]) -> None:
        for row in rows or []:
            self.decisions.append(ReplicationDecision(**row))

    def replicated_labels(self, function: Optional[str] = None) -> Set[str]:
        """Labels of every replica block created (for CFG annotation).

        With ``function`` given, only that function's replicas.
        """
        labels: Set[str] = set()
        for decision in self.decisions:
            if function is not None and decision.function != function:
                continue
            labels.update(decision.copies)
        return labels
