"""JSONL event sink and reader.

A trace file is a stream of JSON objects, one per line, each carrying an
``"event"`` discriminator:

``meta``                    one header line: schema version, argv, label
``span``                    one completed tracer span
``metrics``                 one metrics-registry snapshot
``replication.decision``    one replication decision-log entry

The format is append-friendly and greppable; ``repro trace FILE``
renders it, and the reader below tolerates (and reports) malformed
lines so a truncated file from a crashed run still loads.
"""

from __future__ import annotations

import json
import os
from typing import IO, Iterable, List, Optional, Tuple, Union

__all__ = ["TRACE_SCHEMA_VERSION", "write_events", "read_events", "trace_path_from_env"]

#: Bump when the event layout changes incompatibly.
TRACE_SCHEMA_VERSION = 1

#: Environment variable naming a JSONL trace destination; when set, the
#: CLI activates observability for the whole command automatically.
TRACE_ENV_VAR = "REPRO_TRACE"


def trace_path_from_env() -> Optional[str]:
    """The ``REPRO_TRACE`` destination, or ``None`` when unset/empty."""
    return os.environ.get(TRACE_ENV_VAR) or None


def write_events(
    destination: Union[str, os.PathLike, IO[str]],
    events: Iterable[dict],
    label: str = "",
) -> int:
    """Write a ``meta`` header plus ``events`` as JSONL; return the count."""
    meta = {
        "event": "meta",
        "schema": TRACE_SCHEMA_VERSION,
        "label": label,
    }
    count = 0

    def emit(handle: IO[str]) -> int:
        written = 0
        handle.write(json.dumps(meta, separators=(",", ":")) + "\n")
        for event in events:
            handle.write(json.dumps(event, separators=(",", ":")) + "\n")
            written += 1
        return written

    if hasattr(destination, "write"):
        count = emit(destination)  # type: ignore[arg-type]
    else:
        with open(destination, "w", encoding="utf-8") as handle:
            count = emit(handle)
    return count


def read_events(
    source: Union[str, os.PathLike, IO[str]],
) -> Tuple[List[dict], List[str]]:
    """Parse a JSONL trace; returns ``(events, problems)``.

    Malformed lines do not abort the read — they are summarized in
    ``problems`` so a digest over a truncated trace can still render.
    """
    events: List[dict] = []
    problems: List[str] = []

    def consume(handle: IO[str]) -> None:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                event = json.loads(line)
            except json.JSONDecodeError as exc:
                problems.append(f"line {lineno}: {exc}")
                continue
            if not isinstance(event, dict) or "event" not in event:
                problems.append(f"line {lineno}: not an event object")
                continue
            events.append(event)

    if hasattr(source, "read"):
        consume(source)  # type: ignore[arg-type]
    else:
        with open(source, "r", encoding="utf-8") as handle:
            consume(handle)
    return events, problems
