"""The observer: one bundle of tracer + metrics + decision log.

An :class:`Observer` is what the rest of the code base talks to.  It is
installed *ambiently* — :func:`install` makes it the process-wide active
observer, :func:`active` retrieves it (or ``None``), and instrumented
code guards every touch with that single ``None`` check, so the
un-observed hot path costs one global read.

:func:`observing` is the ergonomic front door::

    with observing(jsonl_path="out.jsonl") as obs:
        compile_and_measure("sieve", replication="jumps")
    # out.jsonl now holds spans, metrics and the decision log

Observers are process-local.  Worker processes of the parallel
execution layer build their own observer per cell and ship a
:meth:`Observer.snapshot` back inside the result envelope; the parent
folds it in with :meth:`Observer.merge_snapshot`.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Iterator, List, Optional, Union

from .decisions import DecisionLog
from .metrics import MetricsRegistry
from .sink import trace_path_from_env, write_events
from .tracer import Tracer

__all__ = [
    "Observer",
    "install",
    "deactivate",
    "active",
    "observing",
    "observer_from_env",
]

_ACTIVE: Optional[Observer] = None


class Observer:
    """Tracer + metrics + replication decision log, as one unit."""

    def __init__(self, spans: bool = True, decisions: bool = True) -> None:
        self.tracer = Tracer(enabled=spans)
        self.metrics = MetricsRegistry()
        self.decisions = DecisionLog(enabled=decisions)

    # Convenience pass-throughs so call sites read naturally.

    def span(self, name: str, **attrs):
        return self.tracer.span(name, **attrs)

    def inc(self, name: str, amount: float = 1) -> None:
        self.metrics.inc(name, amount)

    def observe_value(self, name: str, value: float, **kwargs) -> None:
        self.metrics.observe(name, value, **kwargs)

    # --- export / merge -------------------------------------------------------

    def snapshot(self) -> dict:
        """Everything collected so far, as plain pickle/JSON-safe data."""
        return {
            "spans": self.tracer.as_dicts(),
            "metrics": self.metrics.snapshot(),
            "decisions": self.decisions.as_dicts(),
        }

    def merge_snapshot(self, snap: Optional[dict]) -> None:
        """Fold a worker's :meth:`snapshot` into this observer."""
        if not snap:
            return
        self.tracer.merge_dicts(snap.get("spans"))
        self.metrics.merge_snapshot(snap.get("metrics"))
        self.decisions.merge_dicts(snap.get("decisions"))

    def events(self) -> List[dict]:
        """The collected data as a flat JSONL-ready event list."""
        rows: List[dict] = [
            {"event": "span", **span} for span in self.tracer.as_dicts()
        ]
        rows.extend(
            {"event": "replication.decision", **decision}
            for decision in self.decisions.as_dicts()
        )
        if not self.metrics.is_empty():
            rows.append({"event": "metrics", "data": self.metrics.snapshot()})
        return rows

    def write_jsonl(
        self, destination: Union[str, os.PathLike], label: str = ""
    ) -> int:
        """Write the trace as JSONL; returns the number of events."""
        return write_events(destination, self.events(), label=label)


# --- ambient installation ------------------------------------------------------


def install(observer: Observer) -> Observer:
    """Make ``observer`` the process-wide active observer."""
    global _ACTIVE
    _ACTIVE = observer
    return observer


def deactivate() -> Optional[Observer]:
    """Clear the active observer; returns what was installed."""
    global _ACTIVE
    previous, _ACTIVE = _ACTIVE, None
    return previous


def active() -> Optional[Observer]:
    """The installed observer, or ``None`` — the one hot-path check."""
    return _ACTIVE


@contextmanager
def observing(
    jsonl_path: Optional[Union[str, os.PathLike]] = None,
    spans: bool = True,
    decisions: bool = True,
    label: str = "",
) -> Iterator[Observer]:
    """Install a fresh observer for the duration of the block.

    The previously active observer (if any) is restored on exit, and the
    trace is written to ``jsonl_path`` when given — also on exceptions,
    so a crashed run still leaves its trace behind.
    """
    global _ACTIVE
    previous = _ACTIVE
    observer = Observer(spans=spans, decisions=decisions)
    _ACTIVE = observer
    try:
        yield observer
    finally:
        _ACTIVE = previous
        if jsonl_path is not None:
            observer.write_jsonl(jsonl_path, label=label)


def observer_from_env() -> Optional[str]:
    """The ``REPRO_TRACE`` trace destination, if configured."""
    return trace_path_from_env()
