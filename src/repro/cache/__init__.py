"""Instruction-cache simulation (Table 6 substrate + associative extension).

Two Table-6 engines exist: the per-configuration reference replay
(:func:`simulate_cache`, the differential oracle) and the single-pass
multi-configuration engine with steady-state loop fast-forwarding
(:func:`simulate_multi_cache`).  :func:`simulate_paper_configurations`
selects between them (``engine=`` argument or ``REPRO_CACHESIM_ENGINE``;
default ``multi``); both produce byte-identical :class:`CacheResult`\\ s.
"""

from .associative import AssociativeCacheConfig, simulate_associative_cache
from .direct_mapped import (
    CACHESIM_ENGINES,
    PAPER_CACHE_SIZES,
    CacheConfig,
    CacheResult,
    resolve_cachesim_engine,
    simulate_cache,
    simulate_paper_configurations,
)
from .multi import MultiCacheStats, simulate_multi_cache

__all__ = [
    "PAPER_CACHE_SIZES",
    "CACHESIM_ENGINES",
    "CacheConfig",
    "CacheResult",
    "resolve_cachesim_engine",
    "simulate_cache",
    "simulate_paper_configurations",
    "simulate_multi_cache",
    "MultiCacheStats",
    "AssociativeCacheConfig",
    "simulate_associative_cache",
]
