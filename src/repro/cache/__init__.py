"""Instruction-cache simulation (Table 6 substrate + associative extension)."""

from .associative import AssociativeCacheConfig, simulate_associative_cache
from .direct_mapped import (
    PAPER_CACHE_SIZES,
    CacheConfig,
    CacheResult,
    simulate_cache,
    simulate_paper_configurations,
)

__all__ = [
    "PAPER_CACHE_SIZES",
    "CacheConfig",
    "CacheResult",
    "simulate_cache",
    "simulate_paper_configurations",
    "AssociativeCacheConfig",
    "simulate_associative_cache",
]
