"""Set-associative instruction caches (extension).

The paper simulates direct-mapped caches only; its methodology follows
Smith's cache survey, which studies associativity as the other first-order
parameter.  This extension adds an N-way set-associative LRU cache so the
replication trade-off can be examined when conflict misses are softened:
code replication's extra conflict misses on small caches are partly an
artifact of direct mapping, and associativity recovers some of them.

``associativity=1`` reduces to the direct-mapped behaviour of
:mod:`repro.cache.direct_mapped` (property-tested equivalence).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from .direct_mapped import CacheResult

__all__ = ["AssociativeCacheConfig", "simulate_associative_cache"]


@dataclass(frozen=True)
class AssociativeCacheConfig:
    """An N-way set-associative instruction cache with LRU replacement."""

    size: int = 1024
    line_size: int = 16
    associativity: int = 2
    hit_time: int = 1
    miss_penalty: int = 10
    context_switch_interval: int = 10_000

    @property
    def lines(self) -> int:
        return self.size // self.line_size

    @property
    def sets(self) -> int:
        return self.lines // self.associativity

    def __post_init__(self) -> None:
        if self.size % self.line_size != 0:
            raise ValueError("cache size must be a multiple of the line size")
        if self.associativity < 1:
            raise ValueError("associativity must be at least 1")
        if self.lines % self.associativity != 0:
            raise ValueError("line count must be a multiple of associativity")
        if self.sets & (self.sets - 1):
            raise ValueError("number of sets must be a power of two")


def simulate_associative_cache(
    trace: Sequence[int],
    block_fetches: Dict[int, List[int]],
    config: AssociativeCacheConfig,
    context_switches: bool = False,
) -> CacheResult:
    """Replay an instruction-fetch stream through an N-way LRU cache."""
    line_shift = config.line_size.bit_length() - 1
    index_mask = config.sets - 1
    ways = config.associativity

    block_lines: Dict[int, List[int]] = {
        block_id: [addr >> line_shift for addr in fetches]
        for block_id, fetches in block_fetches.items()
    }
    no_fetches: List[int] = []

    # Per set: a most-recent-first list of resident line numbers.
    sets: List[List[int]] = [[] for _ in range(config.sets)]
    accesses = 0
    misses = 0
    cost = 0
    flushes = 0
    hit_time = config.hit_time
    miss_time = config.miss_penalty
    interval = config.context_switch_interval
    next_flush = interval if context_switches else None

    for block_id in trace:
        for line in block_lines.get(block_id, no_fetches):
            accesses += 1
            bucket = sets[line & index_mask]
            try:
                position = bucket.index(line)
            except ValueError:
                position = -1
            if position >= 0:
                cost += hit_time
                if position != 0:
                    bucket.insert(0, bucket.pop(position))
            else:
                misses += 1
                cost += miss_time
                bucket.insert(0, line)
                if len(bucket) > ways:
                    bucket.pop()
            if next_flush is not None and cost >= next_flush:
                sets = [[] for _ in range(config.sets)]
                flushes += 1
                next_flush += interval
    return CacheResult(accesses, misses, cost, flushes)
