"""Single-pass multi-configuration cache engine with loop fast-forwarding.

The Table-6 evaluation simulates every traced run against four direct-
mapped cache sizes.  The reference path replays the full block trace
once *per configuration*, re-deriving per-block line sequences each
time; on the longer benchmarks that is four passes over millions of
block ids.  This engine:

* derives each block's cache-line sequence **once** (all paper
  configurations share the 16-byte line size, so line numbers are
  configuration-independent — only the index mask differs);
* walks the trace **once**, maintaining every configuration's cache
  state side by side;
* consumes the compressed records of a
  :class:`~repro.ease.trace.CompressedTrace` directly, exploiting the
  fact that trace bodies are *interned*: for each distinct body and
  configuration a **replay summary** is computed once — per touched
  cache slot, the first and last line fetched, plus the body's internal
  (tag-change) miss count.  Direct-mapped state evolution within a body
  is fully determined by those: replaying a body from any cache state
  costs ``base_misses`` plus one miss per touched slot whose resident
  tag differs from the slot's first line, and leaves each touched slot
  holding its last line.  A record is therefore charged in
  O(touched slots) — and a ``(body, n)`` loop record in O(1) per
  steady-state iteration — instead of O(instruction fetches);
* keeps the exact per-line replay as the fallback for records that
  might cross a context-switch boundary.

Context-switch flush accounting stays *exact*: the summary path is only
taken when the record's final cost provably stays below the next flush
boundary (cost grows monotonically, so no intermediate access can
trigger the flush either); a record that might cross the boundary is
simulated line by line, so flush counts, positions and post-flush cold
misses match the reference engine bit for bit.  Parity with
:func:`repro.cache.direct_mapped.simulate_cache` over every program,
size and context-switch setting is asserted in
``tests/cache/test_engine_parity.py`` and gated in CI.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from .direct_mapped import CacheConfig, CacheResult

__all__ = ["simulate_multi_cache", "MultiCacheStats"]


class MultiCacheStats:
    """Fast-forward accounting of one :func:`simulate_multi_cache` call."""

    __slots__ = ("fastforward_iters", "fastforward_hits", "records", "raw_blocks")

    def __init__(self) -> None:
        self.fastforward_iters = 0  # loop iterations charged arithmetically
        self.fastforward_hits = 0  # hit accesses charged arithmetically
        self.records = 0  # compressed records consumed
        self.raw_blocks = 0  # block ids the records expand to


class _BodySummary:
    """Replay algebra of one body under one index mask.

    For each touched slot, a direct-mapped cache's accesses to that slot
    form a line subsequence ``L1..Lk``; replaying from resident tag ``t``
    misses ``changes(L1..Lk) + (1 if t != L1 else 0)`` times and leaves
    ``Lk`` resident.  Summing over slots: ``base`` internal misses plus
    one per mismatched first line, final state = ``last`` — independent
    of access order, which is why the summary path needs no per-line
    walk (order only matters to flush timing, and the summary path is
    gated on no flush being reachable).
    """

    __slots__ = ("n_access", "base", "touched", "steady")

    def __init__(self, lines: Sequence[int], index_mask: int) -> None:
        prev: Dict[int, int] = {}
        first: List[Tuple[int, int]] = []
        base = 0
        for line in lines:
            slot = line & index_mask
            resident = prev.get(slot)
            if resident is None:
                first.append((slot, line))
            elif resident != line:
                base += 1
            prev[slot] = line
        self.n_access = len(lines)
        self.base = base
        #: Per touched slot: (slot, first line fetched, last line fetched).
        self.touched = [
            (slot, line, prev[slot]) for slot, line in first
        ]
        #: Misses of every iteration after the first, when the body
        #: repeats back to back: each touched slot then starts at its
        #: own last line.
        self.steady = base + sum(
            1 for slot, line in first if prev[slot] != line
        )


class _CacheState:
    """One configuration's live simulation state."""

    __slots__ = (
        "index_mask",
        "lines",
        "hit_time",
        "miss_time",
        "interval",
        "next_flush",
        "cache",
        "accesses",
        "misses",
        "cost",
        "flushes",
        "ff_iters",
        "ff_hits",
    )

    def __init__(self, config: CacheConfig, context_switches: bool) -> None:
        self.index_mask = config.lines - 1
        self.lines = config.lines
        self.hit_time = config.hit_time
        self.miss_time = config.miss_penalty
        self.interval = config.context_switch_interval
        self.next_flush: Optional[int] = (
            self.interval if context_switches else None
        )
        self.cache: List[int] = [-1] * config.lines
        self.accesses = 0
        self.misses = 0
        self.cost = 0
        self.flushes = 0
        self.ff_iters = 0
        self.ff_hits = 0

    # --- exact per-line fallback (flush boundaries) ---------------------------

    def replay(self, lines: Sequence[int]) -> None:
        """Replay one line sequence — byte-identical to the reference loop."""
        cache = self.cache
        index_mask = self.index_mask
        hit_time = self.hit_time
        miss_time = self.miss_time
        next_flush = self.next_flush
        accesses = self.accesses
        misses = self.misses
        cost = self.cost
        if next_flush is None:
            for line in lines:
                accesses += 1
                slot = line & index_mask
                if cache[slot] == line:
                    cost += hit_time
                else:
                    cache[slot] = line
                    misses += 1
                    cost += miss_time
        else:
            interval = self.interval
            for line in lines:
                accesses += 1
                slot = line & index_mask
                if cache[slot] == line:
                    cost += hit_time
                else:
                    cache[slot] = line
                    misses += 1
                    cost += miss_time
                if cost >= next_flush:
                    cache = self.cache = [-1] * self.lines
                    self.flushes += 1
                    next_flush += interval
            self.next_flush = next_flush
        self.accesses = accesses
        self.misses = misses
        self.cost = cost

    # --- summary fast path ----------------------------------------------------

    def replay_record_noflush(
        self, summary: _BodySummary, lines: Sequence[int], count: int
    ) -> None:
        """Replay ``count`` body iterations with context switches off.

        With no flush boundary to respect the whole record collapses to
        one fused pass over the touched slots: count the first
        iteration's mismatch misses, install the final tags, and charge
        the remaining ``count - 1`` iterations at the steady-state rate.
        ``lines`` is unused (no exact fallback is ever needed); it is
        accepted so both replay methods share a call shape.
        """
        n_access = summary.n_access
        if n_access == 0 or count <= 0:
            return
        cache = self.cache
        delta = summary.base
        for slot, first, last in summary.touched:
            if cache[slot] != first:
                delta += 1
            cache[slot] = last
        steady = summary.steady
        delta += (count - 1) * steady
        n = n_access * count
        self.accesses += n
        self.misses += delta
        self.cost += n * self.hit_time + delta * (self.miss_time - self.hit_time)
        if count > 1:
            self.ff_iters += count - 1
            self.ff_hits += (count - 1) * (n_access - steady)

    def replay_record(
        self, summary: _BodySummary, lines: Sequence[int], count: int
    ) -> None:
        """Replay ``count`` iterations of one record's body."""
        n_access = summary.n_access
        if n_access == 0 or count <= 0:
            return
        touched = summary.touched
        base = summary.base
        steady = summary.steady
        hit_time = self.hit_time
        extra = self.miss_time - hit_time
        hit_cost = n_access * hit_time
        steady_cost = hit_cost + steady * extra
        # Worst-case first-iteration cost: every touched slot misses.
        worst_cost = hit_cost + (base + len(touched)) * extra
        cache = self.cache
        remaining = count
        while remaining > 0:
            next_flush = self.next_flush
            if next_flush is not None and self.cost + worst_cost < next_flush:
                # Even an all-miss iteration stays below the boundary:
                # fuse the miss scan and the tag install into one pass.
                delta = base
                for slot, first, last in touched:
                    if cache[slot] != first:
                        delta += 1
                    cache[slot] = last
                first_end = self.cost + hit_cost + delta * extra
                iters = 1
                if remaining > 1:
                    if steady_cost:
                        fit = (next_flush - 1 - first_end) // steady_cost
                        if fit > remaining - 1:
                            fit = remaining - 1
                    else:
                        fit = remaining - 1
                    iters += fit
                delta += (iters - 1) * steady
                n = n_access * iters
                self.accesses += n
                self.misses += delta
                self.cost += n * hit_time + delta * extra
                if iters > 1:
                    self.ff_iters += iters - 1
                    self.ff_hits += (iters - 1) * (n_access - steady)
                remaining -= iters
                continue
            # Misses of the next iteration, from the current tags.
            delta = base
            for slot, first, _last in touched:
                if cache[slot] != first:
                    delta += 1
            if next_flush is None:
                iters = remaining
            else:
                first_end = self.cost + hit_cost + delta * extra
                if first_end >= next_flush:
                    # The flush boundary is reachable inside this
                    # iteration: simulate it line by line (exact flush
                    # accounting).
                    self.replay(lines)
                    cache = self.cache
                    remaining -= 1
                    continue
                # Cost is monotone, so any prefix of iterations whose
                # *final* cost stays below the boundary cannot trigger
                # the flush at an intermediate access either; every
                # iteration after the first costs exactly ``steady_cost``
                # (tags are at their fixpoint).  Charge the longest
                # provably-safe prefix.
                iters = 1
                if remaining > 1:
                    if steady_cost:
                        fit = (next_flush - 1 - first_end) // steady_cost
                        if fit > remaining - 1:
                            fit = remaining - 1
                    else:
                        fit = remaining - 1
                    iters += fit
            delta += (iters - 1) * steady
            n = n_access * iters
            self.accesses += n
            self.misses += delta
            self.cost += n * hit_time + delta * extra
            for slot, _first, last in touched:
                cache[slot] = last
            if iters > 1:
                self.ff_iters += iters - 1
                self.ff_hits += (iters - 1) * (n_access - steady)
            remaining -= iters

    def result(self) -> CacheResult:
        return CacheResult(self.accesses, self.misses, self.cost, self.flushes)


def _records_of(trace) -> Iterable[Tuple[Sequence[int], int]]:
    """The ``(body, count)`` record stream of any trace representation."""
    records = getattr(trace, "records", None)
    if callable(records):
        return records()
    return [(trace, 1)]


def simulate_multi_cache(
    trace,
    block_fetches: Dict[int, List[int]],
    configs: Sequence[CacheConfig],
    context_switches=False,
    stats: Optional[MultiCacheStats] = None,
) -> List[CacheResult]:
    """Simulate all ``configs`` in one walk over ``trace``.

    :param trace: a ``CompressedTrace`` (fast path: compressed records,
        per-body replay summaries, loop fast-forwarding) or any iterable
        of global block ids.
    :param context_switches: a single bool for every config, or one bool
        per config — the full Table-6 grid (4 sizes x with/without
        context switches) can thus run as 8 states in a single walk,
        sharing one plan build per distinct body.
    :param stats: optional accounting object filled with fast-forward
        coverage counters.
    :returns: one :class:`CacheResult` per config, in input order —
        each byte-identical to a reference ``simulate_cache`` run.
    """
    if isinstance(context_switches, bool):
        ctx_flags = [context_switches] * len(configs)
    else:
        ctx_flags = [bool(flag) for flag in context_switches]
        if len(ctx_flags) != len(configs):
            raise ValueError(
                "context_switches must be a bool or one flag per config "
                f"(got {len(ctx_flags)} flags for {len(configs)} configs)"
            )
    states = [
        _CacheState(config, ctx) for config, ctx in zip(configs, ctx_flags)
    ]

    # One line table per distinct line size (a single one in practice:
    # every paper configuration uses 16-byte lines), and per (body,
    # shift) one flattened line list / per (body, mask) one summary —
    # bodies are interned, so identity-keyed memos pay off across the
    # thousands of records a hot loop seals.
    tables: Dict[int, Dict[int, List[int]]] = {}
    shifts: List[int] = []
    for config in configs:
        shift = config.line_size.bit_length() - 1
        shifts.append(shift)
        if shift not in tables:
            tables[shift] = {
                block_id: [addr >> shift for addr in fetches]
                for block_id, fetches in block_fetches.items()
            }

    no_fetches: List[int] = []
    # Per interned body: [(state, summary, lines), ...] — built on first
    # sight, reused by every later record referencing the same body.
    plans: Dict[int, tuple] = {}

    def build_plan(body) -> List[tuple]:
        flats: Dict[int, List[int]] = {}
        # dict.fromkeys, not set(): first-seen order is hash-seed
        # independent, so plan construction (and any float accumulation
        # downstream) is identical run to run under randomized hashing.
        for shift in dict.fromkeys(shifts):
            table = tables[shift]
            lines: List[int] = []
            extend = lines.extend
            for block_id in body:
                extend(table.get(block_id, no_fetches))
            flats[shift] = lines
        plan = []
        seen: Dict[Tuple[int, int], _BodySummary] = {}
        for state, shift, ctx in zip(states, shifts, ctx_flags):
            key = (shift, state.index_mask)
            summary = seen.get(key)
            if summary is None:
                summary = seen[key] = _BodySummary(
                    flats[shift], state.index_mask
                )
            # A state with no flush boundary gets the fused single-pass
            # replay; summaries are shared across the two context-switch
            # settings (they only depend on shift and mask).
            replay = state.replay_record if ctx else state.replay_record_noflush
            plan.append((replay, summary, flats[shift]))
        return plan

    # Record/block totals are O(1) on a CompressedTrace; only unknown
    # record streams need per-record counting inside the hot loop.
    inline_stats = None
    if stats is not None:
        record_count = getattr(trace, "record_count", None)
        if record_count is not None:
            stats.records += record_count
            stats.raw_blocks += len(trace)
        else:
            inline_stats = stats

    for body, count in _records_of(trace):
        if inline_stats is not None:
            inline_stats.records += 1
            inline_stats.raw_blocks += len(body) * count
        entry = plans.get(id(body))
        if entry is None or entry[0] is not body:
            # Key by identity but pin the body in the entry: a custom
            # record stream could yield ephemeral bodies whose ids get
            # recycled after collection.
            entry = plans[id(body)] = (body, build_plan(body))
        for replay, summary, lines in entry[1]:
            replay(summary, lines, count)

    if stats is not None:
        stats.fastforward_iters = sum(state.ff_iters for state in states)
        stats.fastforward_hits = sum(state.ff_hits for state in states)
    _observe(states, stats)
    return [state.result() for state in states]


def _observe(states: List[_CacheState], stats: Optional[MultiCacheStats]) -> None:
    """Publish fast-forward coverage to the ambient observer, if any."""
    from ..obs import active as _active_observer

    obs = _active_observer()
    if obs is None:
        return
    obs.metrics.inc("cachesim.multi.runs")
    obs.metrics.inc(
        "cachesim.fastforward.iters", sum(state.ff_iters for state in states)
    )
    obs.metrics.inc(
        "cachesim.fastforward.hits", sum(state.ff_hits for state in states)
    )
