"""Direct-mapped instruction-cache simulation (§5.3 of the paper).

Parameters follow the paper exactly:

* cache sizes of 1, 2, 4 and 8 KB are studied, each direct-mapped with
  16 bytes per line;
* fetch cost = hits * 1 + misses * 10 (cache access time 1, miss penalty
  10, after Smith's cache studies);
* context switches are simulated by invalidating the entire cache every
  10 000 units of time (of accumulated fetch cost).

The simulator consumes the block-level trace plus the per-block fetch
addresses produced by :func:`repro.ease.measure.measure_program`.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

__all__ = [
    "CacheConfig",
    "CacheResult",
    "simulate_cache",
    "PAPER_CACHE_SIZES",
    "CACHESIM_ENGINES",
    "resolve_cachesim_engine",
]

PAPER_CACHE_SIZES = (1024, 2048, 4096, 8192)

#: Known Table-6 simulation engines: ``reference`` replays the raw trace
#: once per configuration (the differential oracle); ``multi`` walks the
#: (compressed) trace once with all configurations side by side and
#: fast-forwards steady-state loops (see :mod:`repro.cache.multi`).
CACHESIM_ENGINES = ("reference", "multi")


def resolve_cachesim_engine(engine: Optional[str] = None) -> str:
    """Pick the Table-6 engine: argument > ``REPRO_CACHESIM_ENGINE`` > multi."""
    chosen = engine or os.environ.get("REPRO_CACHESIM_ENGINE") or "multi"
    if chosen not in CACHESIM_ENGINES:
        raise ValueError(
            f"unknown cache-simulation engine {chosen!r}; "
            f"expected one of {CACHESIM_ENGINES}"
        )
    return chosen


@dataclass(frozen=True)
class CacheConfig:
    """A direct-mapped instruction cache configuration."""

    size: int = 1024
    line_size: int = 16
    hit_time: int = 1
    miss_penalty: int = 10  # "misses are ten times as expensive as hits"
    context_switch_interval: int = 10_000

    @property
    def lines(self) -> int:
        return self.size // self.line_size

    def __post_init__(self) -> None:
        if self.size % self.line_size != 0:
            raise ValueError("cache size must be a multiple of the line size")
        if self.lines & (self.lines - 1):
            raise ValueError("number of cache lines must be a power of two")


@dataclass
class CacheResult:
    """Counts from one cache simulation."""

    accesses: int
    misses: int
    fetch_cost: int
    flushes: int

    @property
    def hits(self) -> int:
        return self.accesses - self.misses

    @property
    def miss_ratio(self) -> float:
        if self.accesses == 0:
            return 0.0
        return self.misses / self.accesses

    def __repr__(self) -> str:
        return (
            f"<CacheResult accesses={self.accesses} misses={self.misses} "
            f"ratio={self.miss_ratio:.4f} cost={self.fetch_cost}>"
        )


def simulate_cache(
    trace: Sequence[int],
    block_fetches: Dict[int, List[int]],
    config: CacheConfig,
    context_switches: bool = False,
) -> CacheResult:
    """Replay an instruction-fetch stream through a direct-mapped cache.

    :param trace: executed basic blocks as global block ids, in order.
    :param block_fetches: per block id, the fetch address of each machine
        instruction in the block.
    :param context_switches: flush the cache every
        ``config.context_switch_interval`` time units when set.
    """
    line_shift = config.line_size.bit_length() - 1
    index_mask = config.lines - 1

    # Precompute each block's line-number sequence once.
    block_lines: Dict[int, List[int]] = {
        block_id: [addr >> line_shift for addr in fetches]
        for block_id, fetches in block_fetches.items()
    }
    # A traced block with no fetch addresses (an empty basic block, or a
    # trace from another layout) contributes zero accesses.
    no_fetches: List[int] = []

    cache: List[int] = [-1] * config.lines
    accesses = 0
    misses = 0
    cost = 0
    flushes = 0
    hit_time = config.hit_time
    # "fetch cost = cache hits * cache access time + cache misses * miss
    # penalty" — a miss costs the penalty (10 units), not penalty + hit.
    miss_time = config.miss_penalty
    interval = config.context_switch_interval
    next_flush = interval if context_switches else None

    for block_id in trace:
        for line in block_lines.get(block_id, no_fetches):
            accesses += 1
            slot = line & index_mask
            if cache[slot] == line:
                cost += hit_time
            else:
                cache[slot] = line
                misses += 1
                cost += miss_time
            if next_flush is not None and cost >= next_flush:
                cache = [-1] * config.lines
                flushes += 1
                next_flush += interval
    return CacheResult(accesses, misses, cost, flushes)


def simulate_paper_configurations(
    trace: Sequence[int],
    block_fetches: Dict[int, List[int]],
    context_switches: bool = False,
    engine: Optional[str] = None,
) -> Dict[int, CacheResult]:
    """Run the four cache sizes of Table 6; keyed by size in bytes.

    ``engine`` selects the simulator: ``"multi"`` (the default) walks
    the trace once with all four cache states side by side and
    fast-forwards steady-state loops; ``"reference"`` replays the trace
    per size through :func:`simulate_cache`.  Both produce identical
    :class:`CacheResult`\\ s (property-tested and CI-gated parity).
    """
    if resolve_cachesim_engine(engine) == "multi":
        from .multi import simulate_multi_cache

        configs = [CacheConfig(size=size) for size in PAPER_CACHE_SIZES]
        results = simulate_multi_cache(
            trace, block_fetches, configs, context_switches
        )
        return dict(zip(PAPER_CACHE_SIZES, results))
    return {
        size: simulate_cache(
            trace, block_fetches, CacheConfig(size=size), context_switches
        )
        for size in PAPER_CACHE_SIZES
    }
