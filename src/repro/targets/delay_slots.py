"""Delay-slot filling for the RISC target (Figure 3's final phase).

On the SPARC every control transfer (conditional branch, jump, call,
return) has an architectural delay slot.  The classic filling strategy
moves an earlier, independent instruction of the same block into the slot;
when none is available a no-op must be inserted.

Block invariants in this code base require transfers to terminate blocks,
so the model keeps filled slots implicit (the "moved" instruction simply
stays where it is — execution order is equivalent) and materializes only
the *unfilled* slots as explicit :class:`~repro.rtl.insn.Nop` instructions
placed directly before the transfer.  Counts, sizes and cache layout all
see the no-op; the interpreter executes it as one instruction.

The paper reports that code replication eliminated about 50 % of executed
no-ops on the SPARC: larger basic blocks offer more independent
instructions to move into slots, which this model captures.
"""

from __future__ import annotations

from typing import List

from ..cfg.block import Function
from ..cfg.graph import compute_flow
from ..rtl.insn import Assign, Call, Insn, Nop

__all__ = ["fill_delay_slots", "count_nops"]


def _is_movable(insn: Insn) -> bool:
    """Instructions that may be moved into a delay slot.

    Compares are excluded: a conditional branch depends on the condition
    codes, so the compare cannot execute after the branch decision; being
    conservative, we never use compares as slot fillers.
    """
    return isinstance(insn, Assign)


def fill_delay_slots(func: Function) -> int:
    """Fill delay slots in ``func``; return the number of no-ops inserted.

    Walks each block keeping a pool of not-yet-consumed movable
    instructions.  Each delay-slotted instruction (calls inside the block
    and the terminating transfer) consumes one pooled instruction, or
    forces an explicit no-op.
    """
    inserted = 0
    for block in func.blocks:
        available = 0
        new_insns: List[Insn] = []
        for insn in block.insns:
            if isinstance(insn, Call):
                if available > 0:
                    available -= 1
                else:
                    new_insns.append(Nop())
                    inserted += 1
                new_insns.append(insn)
                continue
            if insn.is_transfer():
                if available > 0:
                    available -= 1
                else:
                    new_insns.append(Nop())
                    inserted += 1
                new_insns.append(insn)
                continue
            if _is_movable(insn):
                available += 1
            new_insns.append(insn)
        block.insns = new_insns
    compute_flow(func)
    return inserted


def count_nops(func: Function) -> int:
    """The number of explicit no-ops currently in ``func``."""
    return sum(1 for insn in func.insns() if isinstance(insn, Nop))
