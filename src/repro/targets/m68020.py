"""A Motorola-68020-like CISC machine description.

Characteristics modelled (cf. §5 of the paper, which generated 68020/68881
code):

* memory operands are allowed directly in ALU instructions and moves, so
  instruction selection can fold loads and stores into computations;
* rich addressing modes: base register + index register (optionally scaled
  by 1/2/4/8) + displacement;
* variable instruction sizes (2–10 bytes), which matters to the
  instruction-cache layout;
* data registers d0–d7 and address registers a0–a5 are allocatable
  (a6 is the frame pointer, a7 the stack pointer, as in the paper's
  listings where locals print as ``a[6]+i.``).
"""

from __future__ import annotations

from typing import Tuple

from ..rtl.expr import BinOp, Const, Expr, Local, Mem, Reg, Sym, UnOp
from ..rtl.insn import (
    Assign,
    Call,
    Compare,
    CondBranch,
    IndirectJump,
    Insn,
    Jump,
    Nop,
    Return,
)
from .machine import Machine, flatten_sum, is_leaf

__all__ = ["M68020"]

_SCALES = (1, 2, 4, 8)


class M68020(Machine):
    """The Motorola-68020-like CISC machine description."""

    name = "m68020"
    has_delay_slots = False
    allows_memory_operands = True

    pool = tuple(
        [Reg("d", i) for i in range(7)] + [Reg("a", i) for i in range(4)]
    )
    # d7 and a4/a5 are reserved as spill/legalization scratch registers
    # (a6 is the frame pointer, a7 the stack pointer).
    scratch = (Reg("d", 7), Reg("a", 4), Reg("a", 5))

    # --- operand shapes --------------------------------------------------------

    def _operand(self, expr: Expr) -> bool:
        """An effective address: leaf or legal memory reference."""
        if is_leaf(expr):
            return True
        if isinstance(expr, Mem):
            return self.legal_addr(expr.addr)
        return False

    def _mem_count(self, expr: Expr) -> int:
        if isinstance(expr, Mem):
            return 1
        if isinstance(expr, BinOp):
            return self._mem_count(expr.left) + self._mem_count(expr.right)
        if isinstance(expr, UnOp):
            return self._mem_count(expr.operand)
        return 0

    def legal_addr(self, addr: Expr) -> bool:
        """base + (scaled) index + displacement, at most one of each."""
        terms = flatten_sum(addr)
        if terms is None:
            return False
        bases = 0
        indexes = 0
        consts = 0
        for term in terms:
            if isinstance(term, (Reg, Sym, Local)):
                bases += 1
            elif isinstance(term, Const):
                consts += 1
            elif (
                isinstance(term, BinOp)
                and term.op == "*"
                and isinstance(term.left, Reg)
                and isinstance(term.right, Const)
                and term.right.value in _SCALES
            ):
                indexes += 1
            elif (
                isinstance(term, BinOp)
                and term.op == "<<"
                and isinstance(term.left, Reg)
                and isinstance(term.right, Const)
                and term.right.value in (0, 1, 2, 3)
            ):
                indexes += 1
            else:
                return False
        # A second plain register may serve as the (unscaled) index.
        return bases + indexes <= 2 and consts <= 1

    def legal_assign(self, insn: Assign) -> bool:
        dst_mems = 1 if isinstance(insn.dst, Mem) else 0
        if isinstance(insn.dst, Mem) and not self.legal_addr(insn.dst.addr):
            return False
        src = insn.src
        if self._operand(src):
            # A plain move; mem-to-mem moves are allowed on the 68020.
            return True
        if isinstance(src, UnOp) and self._operand(src.operand):
            # neg/not work on a register or a memory operand...
            return self._mem_count(src.operand) + dst_mems <= 1
        if isinstance(src, BinOp):
            if not (self._operand(src.left) and self._operand(src.right)):
                return False
            if isinstance(insn.dst, Mem):
                # Read-modify-write forms (add #imm,<ea> / add Dn,<ea>):
                # the destination EA may appear as one operand, the other
                # must be a register or an immediate.
                if src.left == insn.dst:
                    return isinstance(src.right, (Reg, Const))
                if src.op in ("+", "*", "&", "|", "^") and src.right == insn.dst:
                    return isinstance(src.left, (Reg, Const))
                return False
            # ALU ops into a register take at most one memory operand.
            return self._mem_count(src) <= 1
        return False

    def legal_compare(self, insn: Compare) -> bool:
        if not (self._operand(insn.left) and self._operand(insn.right)):
            return False
        return self._mem_count(insn.left) + self._mem_count(insn.right) <= 1

    # --- sizes -----------------------------------------------------------------

    def _const_extra(self, value: int) -> int:
        if -128 <= value <= 127:
            return 2  # moveq/addq-style short immediates
        if -32768 <= value <= 32767:
            return 2
        return 4

    def _expr_extra(self, expr: Expr) -> int:
        """Extension words contributed by an operand expression."""
        extra = 0
        if isinstance(expr, Mem):
            terms = flatten_sum(expr.addr) or []
            # Displacement and/or index each need an extension word.
            extra += 2 * max(1, len(terms) - 1)
        elif isinstance(expr, Const):
            extra += self._const_extra(expr.value)
        elif isinstance(expr, (Sym, Local)):
            extra += 4 if isinstance(expr, Sym) else 2
        elif isinstance(expr, BinOp):
            extra += self._expr_extra(expr.left) + self._expr_extra(expr.right)
        elif isinstance(expr, UnOp):
            extra += self._expr_extra(expr.operand)
        return extra

    def insn_size(self, insn: Insn) -> int:
        if isinstance(insn, Assign):
            return 2 + self._expr_extra(insn.dst) + self._expr_extra(insn.src)
        if isinstance(insn, Compare):
            return 2 + self._expr_extra(insn.left) + self._expr_extra(insn.right)
        if isinstance(insn, CondBranch):
            return 4
        if isinstance(insn, Jump):
            return 4
        if isinstance(insn, IndirectJump):
            return 4
        if isinstance(insn, Call):
            return 4
        if isinstance(insn, Return):
            return 2
        if isinstance(insn, Nop):
            return 2
        raise TypeError(f"unknown instruction {insn!r}")

    # --- register preferences ----------------------------------------------------

    def preferred_regs(self, wants_address: bool) -> Tuple[Reg, ...]:
        data = tuple(r for r in self.pool if r.bank == "d")
        addr = tuple(r for r in self.pool if r.bank == "a")
        return addr + data if wants_address else data + addr
