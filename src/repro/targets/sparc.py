"""A SPARC-like RISC machine description.

Characteristics modelled (cf. §5: "the Sun SPARC processor, a RISC
architecture.  For the SPARC processor, delay slots after transfers of
control were filled"):

* strict load/store discipline — ALU operations work on registers and
  13-bit immediates only;
* addressing modes limited to ``reg + reg`` and ``reg + simm13``;
* fixed 4-byte instructions;
* forming a 32-bit constant or a global address takes a ``sethi``/``or``
  pair: such an RTL *counts* as two instructions and eight bytes;
* every control transfer has an architectural delay slot (filled by
  :mod:`repro.targets.delay_slots`, inserting an explicit no-op when no
  useful instruction is available).
"""

from __future__ import annotations

from typing import Tuple

from ..rtl.expr import BinOp, Const, Expr, Local, Mem, Reg, Sym, UnOp
from ..rtl.insn import Assign, Compare, Insn
from .machine import Machine, flatten_sum

__all__ = ["Sparc"]

SIMM13_MIN = -4096
SIMM13_MAX = 4095


def _fits_simm13(value: int) -> bool:
    return SIMM13_MIN <= value <= SIMM13_MAX


class Sparc(Machine):
    """The SPARC-like RISC machine description."""

    name = "sparc"
    has_delay_slots = True
    allows_memory_operands = False

    # %l0-%l7 and %i0-%i5 style pool, named r8..r25 here; r26/r27 are the
    # spill scratch registers, r30 is the frame pointer.
    pool = tuple(Reg("r", i) for i in range(8, 26))
    scratch = (Reg("r", 26), Reg("r", 27), Reg("r", 28))

    # --- operand shapes --------------------------------------------------------

    @staticmethod
    def _reg_or_simm(expr: Expr) -> bool:
        if isinstance(expr, Reg):
            return True
        return isinstance(expr, Const) and _fits_simm13(expr.value)

    def legal_addr(self, addr: Expr) -> bool:
        """reg, reg+reg, reg+simm13, or frame-pointer relative (Local)."""
        if isinstance(addr, (Reg, Local)):
            return True
        terms = flatten_sum(addr)
        if terms is None or len(terms) != 2:
            return False
        a, b = terms
        if isinstance(a, Const):
            a, b = b, a
        if isinstance(b, Reg):
            return isinstance(a, Reg)
        if isinstance(b, Const) and _fits_simm13(b.value):
            return isinstance(a, (Reg, Local))
        return False

    def legal_assign(self, insn: Assign) -> bool:
        if isinstance(insn.dst, Mem):
            if not self.legal_addr(insn.dst.addr):
                return False
            # Stores take a register source; %g0 provides a zero store.
            return isinstance(insn.src, Reg) or insn.src == Const(0)
        src = insn.src
        if isinstance(src, Reg):
            return True
        if isinstance(src, Const):
            return True  # small: or %g0; large: sethi/or pair (2 insns)
        if isinstance(src, (Sym, Local)):
            return True  # address formation (sethi/or or add %fp)
        if isinstance(src, Mem):
            return self.legal_addr(src.addr)
        if isinstance(src, UnOp):
            return isinstance(src.operand, Reg)
        if isinstance(src, BinOp):
            return isinstance(src.left, Reg) and self._reg_or_simm(src.right)
        return False

    def legal_compare(self, insn: Compare) -> bool:
        return isinstance(insn.left, Reg) and self._reg_or_simm(insn.right)

    # --- sizes & counts ---------------------------------------------------------

    def insn_count(self, insn: Insn) -> int:
        if isinstance(insn, Assign) and isinstance(insn.dst, Reg):
            src = insn.src
            if isinstance(src, Const) and not _fits_simm13(src.value):
                return 2  # sethi %hi + or %lo
            if isinstance(src, Sym):
                return 2  # global address formation
        return 1

    def insn_size(self, insn: Insn) -> int:
        return 4 * self.insn_count(insn)

    def preferred_regs(self, wants_address: bool) -> Tuple[Reg, ...]:
        return self.pool
