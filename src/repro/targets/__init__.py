"""Target machine models: a 68020-like CISC and a SPARC-like RISC."""

from .delay_slots import count_nops, fill_delay_slots
from .m68020 import M68020
from .machine import Machine, clear_target_cache, get_target
from .sparc import Sparc

__all__ = [
    "Machine",
    "M68020",
    "Sparc",
    "get_target",
    "clear_target_cache",
    "fill_delay_slots",
    "count_nops",
]
