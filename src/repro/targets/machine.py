"""Machine descriptions.

A :class:`Machine` answers three questions for the rest of the system:

* ``legal(insn)`` — is this RTL implementable as one instruction of the
  target?  Instruction selection *combines* RTLs only while this holds
  (the Davidson/Fraser discipline used by VPO), and *legalization* splits
  RTLs that violate it.
* ``insn_size(insn)`` — how many bytes of instruction memory the RTL
  occupies (used by the cache simulator's layout).
* ``insn_count(insn)`` — how many machine instructions the RTL stands for
  (almost always 1; address formation on the RISC target costs 2).

The two concrete machines live in :mod:`repro.targets.m68020` and
:mod:`repro.targets.sparc`.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..rtl.expr import BinOp, Const, Expr, Local, Reg, Sym
from ..rtl.insn import (
    Assign,
    Call,
    Compare,
    CondBranch,
    IndirectJump,
    Insn,
    Jump,
    Nop,
    Return,
)

__all__ = [
    "Machine",
    "flatten_sum",
    "is_leaf",
    "get_target",
    "clear_target_cache",
]


def flatten_sum(expr: Expr) -> Optional[List[Expr]]:
    """Flatten a ``+`` tree into its terms; ``None`` if another op occurs."""
    terms: List[Expr] = []
    stack = [expr]
    while stack:
        node = stack.pop()
        if isinstance(node, BinOp) and node.op == "+":
            stack.append(node.left)
            stack.append(node.right)
        else:
            terms.append(node)
    return terms


def is_leaf(expr: Expr) -> bool:
    """Leaves usable directly as instruction operands."""
    return isinstance(expr, (Reg, Const, Sym, Local))


class Machine:
    """Base class for target machine descriptions."""

    name = "abstract"
    has_delay_slots = False
    allows_memory_operands = False

    #: Shift counts are reduced ``count & shift_mask`` before shifting.
    #: Both modelled machines declare the mod-32 model of
    #: :mod:`repro.rtl.arith` (the real MC68020 masks mod 64, but a
    #: target-dependent shift would make constant folding — and thus
    #: optimized program behavior — target-dependent; see the shift-count
    #: note in ``rtl/arith.py``).  A future target wanting a different
    #: model must also parametrize ``eval_binop``; the cross-check test
    #: in ``tests/rtl/test_shift_semantics.py`` enforces the agreement.
    shift_mask = 31

    #: Registers available to the colouring allocator.
    pool: Tuple[Reg, ...] = ()
    #: Registers reserved for spill shuttling (never allocated).
    scratch: Tuple[Reg, ...] = ()

    # --- legality ------------------------------------------------------------

    def legal(self, insn: Insn) -> bool:
        """True when ``insn`` can be one instruction of this machine."""
        if isinstance(insn, Assign):
            return self.legal_assign(insn)
        if isinstance(insn, Compare):
            return self.legal_compare(insn)
        # Control transfers, calls and nops are always representable.
        return isinstance(
            insn, (CondBranch, Jump, IndirectJump, Call, Return, Nop)
        )

    def legal_assign(self, insn: Assign) -> bool:
        raise NotImplementedError

    def legal_compare(self, insn: Compare) -> bool:
        raise NotImplementedError

    def legal_addr(self, addr: Expr) -> bool:
        raise NotImplementedError

    # --- sizes & counts --------------------------------------------------------

    def insn_size(self, insn: Insn) -> int:
        raise NotImplementedError

    def insn_count(self, insn: Insn) -> int:
        return 1

    # --- register classification -----------------------------------------------

    def preferred_regs(self, wants_address: bool) -> Tuple[Reg, ...]:
        """Pool order to try when colouring (address-use preference)."""
        return self.pool

    def __repr__(self) -> str:
        return f"<Machine {self.name}>"


#: Machine descriptions are stateless (class-level register pools,
#: pure legality/size methods), so one instance per target serves the
#: whole process.  Warm worker processes rely on this: the pool
#: initializer constructs each target once, and every later cell in
#: that worker reuses it instead of paying per-cell construction.
_INSTANCES: dict = {}


def clear_target_cache() -> None:
    """Drop memoized machine instances (tests of the warm-up path)."""
    _INSTANCES.clear()


def get_target(name: str) -> Machine:
    """Look up a machine description by name ("m68020" or "sparc").

    Memoized per process; the ``targets.machine.{constructed,reused}``
    counters make the reuse observable (the parallel runner's worker
    warm-up asserts construction happens once per worker, not per cell).
    """
    from ..obs import active as _active_observer

    obs = _active_observer()
    key = name.lower()
    machine = _INSTANCES.get(key)
    if machine is not None:
        if obs is not None:
            obs.metrics.inc("targets.machine.reused")
        return machine

    from .m68020 import M68020
    from .sparc import Sparc

    table = {
        "m68020": M68020,
        "68020": M68020,
        "sparc": Sparc,
    }
    try:
        machine = table[key]()
    except KeyError:
        raise ValueError(
            f"unknown target {name!r}; expected one of {sorted(table)}"
        ) from None
    _INSTANCES[key] = machine
    if obs is not None:
        obs.metrics.inc("targets.machine.constructed")
    return machine
