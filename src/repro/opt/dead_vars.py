"""Dead-variable elimination.

Removes assignments to registers that are not live afterwards (loads are
side-effect free in this model, so dead loads disappear too) and compares
whose condition codes nobody reads.  Iterates with recomputed liveness
until nothing changes — removing one dead assignment can make another dead.
"""

from __future__ import annotations

from ..cfg.block import Function
from ..rtl.expr import Reg
from ..rtl.insn import Assign, Compare
from .liveness import Liveness

__all__ = ["eliminate_dead_variables"]


def _one_pass(func: Function) -> bool:
    liveness = Liveness(func)
    changed = False
    for block in func.blocks:
        keep = []
        doomed = set()
        for insn, live_after in liveness.walk_backward(block):
            if isinstance(insn, Assign) and isinstance(insn.dst, Reg):
                if insn.dst not in live_after and insn.dst.bank not in ("arg", "rv"):
                    doomed.add(id(insn))
            elif isinstance(insn, Compare):
                if insn.defined_reg() not in live_after:
                    doomed.add(id(insn))
        if doomed:
            block.insns = [i for i in block.insns if id(i) not in doomed]
            changed = True
    return changed


def eliminate_dead_variables(func: Function, max_passes: int = 20) -> bool:
    """Remove dead register assignments; True if anything changed."""
    changed = False
    for _ in range(max_passes):
        if not _one_pass(func):
            break
        changed = True
    return changed
