"""Constant folding — including folding at conditional branches (§3.3.1).

Two entry points:

* :func:`fold_constants` simplifies expressions everywhere (constant
  arithmetic, algebraic identities, canonicalization of constants to the
  right operand, multiplication by powers of two into shifts);
* :func:`fold_branches` evaluates conditional branches whose compare has
  constant operands.  A branch that always goes becomes an *unconditional
  jump* — exactly the new replication opportunity the paper describes —
  and a branch that never goes is deleted.
"""

from __future__ import annotations

from typing import Optional

from ..cfg.block import Function
from ..cfg.graph import compute_flow
from ..rtl.arith import compare_relation, eval_binop, eval_unop
from ..rtl.expr import BinOp, Const, Expr, Mem, Reg, UnOp, map_expr
from ..rtl.insn import Assign, Compare, CondBranch, IndirectJump, Jump
from .liveness import Liveness

__all__ = ["fold_constants", "fold_branches", "simplify_expr"]

_COMMUTATIVE = {"+", "*", "&", "|", "^"}


def _power_of_two_log(value: int) -> Optional[int]:
    if value > 0 and value & (value - 1) == 0:
        return value.bit_length() - 1
    return None


def _simplify_node(expr: Expr) -> Expr:
    """One-step simplification; children are already simplified."""
    if isinstance(expr, UnOp) and isinstance(expr.operand, Const):
        return Const(eval_unop(expr.op, expr.operand.value))
    if not isinstance(expr, BinOp):
        return expr
    left, right, op = expr.left, expr.right, expr.op
    if isinstance(left, Const) and isinstance(right, Const):
        if op in ("/", "%") and right.value == 0:
            return expr  # leave the trap in place
        return Const(eval_binop(op, left.value, right.value))
    # Canonicalize: constants to the right for commutative operators.
    if op in _COMMUTATIVE and isinstance(left, Const):
        left, right = right, left
        expr = BinOp(op, left, right)
    if isinstance(right, Const):
        c = right.value
        if op in ("+", "-") and c == 0:
            return left
        if op == "-":
            # Normalize subtraction of a constant into addition; helps
            # address-mode formation and re-association.
            return _simplify_node(BinOp("+", left, Const(-c)))
        if op == "*":
            if c == 0:
                return Const(0)
            if c == 1:
                return left
            log = _power_of_two_log(c)
            if log is not None and log > 0:
                # Strength reduction: multiply by 2^k becomes a shift
                # (kept as multiply-by-scale inside addresses, where the
                # 68020 addressing mode wants it; see Machine.legal_addr).
                return BinOp("*", left, right)
        if op in ("<<", ">>") and c == 0:
            return left
        if op == "&" and c == 0:
            return Const(0)
        if op in ("|", "^") and c == 0:
            return left
        # Re-associate (x + c1) + c2 -> x + (c1 + c2).
        if (
            op == "+"
            and isinstance(left, BinOp)
            and left.op == "+"
            and isinstance(left.right, Const)
        ):
            folded = eval_binop("+", left.right.value, c)
            if folded == 0:
                return left.left
            return BinOp("+", left.left, Const(folded))
    if op == "-" and left == right:
        # x - x = 0: expressions are side-effect free, and two reads of the
        # same location within one RTL observe the same value.
        return Const(0)
    return expr


def simplify_expr(expr: Expr) -> Expr:
    """Fully simplify an expression bottom-up."""
    return map_expr(expr, _simplify_node)


def fold_constants(func: Function) -> bool:
    """Simplify every expression in ``func``; True if anything changed."""
    changed = False
    for block in func.blocks:
        for insn in block.insns:
            if isinstance(insn, Assign):
                new_src = simplify_expr(insn.src)
                if new_src != insn.src:
                    insn.src = new_src
                    changed = True
                if isinstance(insn.dst, Mem):
                    new_addr = simplify_expr(insn.dst.addr)
                    if new_addr != insn.dst.addr:
                        insn.dst = Mem(new_addr, insn.dst.width)
                        changed = True
            elif isinstance(insn, Compare):
                new_left = simplify_expr(insn.left)
                new_right = simplify_expr(insn.right)
                if new_left != insn.left or new_right != insn.right:
                    insn.left = new_left
                    insn.right = new_right
                    changed = True
            elif isinstance(insn, IndirectJump):
                new_addr = simplify_expr(insn.addr)
                if new_addr != insn.addr:
                    insn.addr = new_addr
                    changed = True
    return changed


def _single_def_constants(func: Function):
    """Registers whose only definition assigns a constant.

    Returns ``{reg: (value, defining block, index within block)}``; the
    value is valid at any use *dominated* by the definition.  This is the
    global half of "constant folding at conditional branches": on the RISC
    target legalization materializes comparison constants into registers,
    so a purely syntactic Const/Const check would miss them.
    """
    from ..cfg.analyses import get_analyses

    def_counts = {}
    for insn in func.insns():
        reg = insn.defined_reg()
        if reg is not None:
            def_counts[reg] = def_counts.get(reg, 0) + 1
    constants = {}
    for block in func.blocks:
        for index, insn in enumerate(block.insns):
            if (
                isinstance(insn, Assign)
                and isinstance(insn.dst, Reg)
                and isinstance(insn.src, Const)
                and insn.dst.bank not in ("arg", "rv", "cc")
                and def_counts.get(insn.dst) == 1
            ):
                constants[insn.dst] = (insn.src.value, block, index)
    return constants, get_analyses(func).dominators()


def _resolve_constant(
    operand, constants, dom, use_block, use_index
) -> Optional[int]:
    if isinstance(operand, Const):
        return operand.value
    if isinstance(operand, Reg):
        entry = constants.get(operand)
        if entry is None:
            return None
        value, def_block, def_index = entry
        if def_block is use_block:
            return value if def_index < use_index else None
        if def_block in dom and use_block in dom and dom.dominates(def_block, use_block):
            return value
    return None


def _constant_outcome(
    compare: Compare, rel: str, constants, dom, block, index
) -> Optional[bool]:
    """The branch outcome when statically known, else ``None``."""
    left = _resolve_constant(compare.left, constants, dom, block, index)
    right = _resolve_constant(compare.right, constants, dom, block, index)
    if left is not None and right is not None:
        return compare_relation(rel, left, right)
    if compare.left == compare.right:
        # Identical side-effect-free operands: the difference is zero.
        return compare_relation(rel, 0, 0)
    return None


def fold_branches(func: Function) -> bool:
    """Fold conditional branches with statically known outcomes (§3.3.1)."""
    changed = False
    liveness = Liveness(func)
    constants, dom = _single_def_constants(func)
    for block in func.blocks:
        term = block.terminator
        if not isinstance(term, CondBranch):
            continue
        # Find the compare feeding the branch: the last Compare in the
        # block, with no other NZ definition in between (Compare is the
        # only NZ definer, so the last one wins).
        compare = None
        compare_index = -1
        for offset, insn in enumerate(reversed(block.insns[:-1])):
            if isinstance(insn, Compare):
                compare = insn
                compare_index = len(block.insns) - 2 - offset
                break
        if compare is None:
            continue
        outcome = _constant_outcome(
            compare, term.rel, constants, dom, block, compare_index
        )
        if outcome is None:
            continue
        cc = compare.defined_reg()
        if cc in liveness.block_live_out(block):
            continue  # another consumer of the condition codes exists
        block.insns.remove(compare)
        if outcome:
            block.insns[-1] = Jump(term.target)
        else:
            block.insns.pop()
        changed = True
    if changed:
        compute_flow(func)
    return changed
