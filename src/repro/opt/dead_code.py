"""Dead-code elimination at the control-flow level.

Three cleanups, iterated to a fixpoint:

* removal of blocks unreachable from the entry ("As a result of the
  replication process, blocks which cannot be reached by the control flow
  anymore can sometimes occur.  Therefore, dead code elimination is invoked
  to delete these blocks." — §4);
* removal of an unconditional jump to the positionally next block;
* merging a block into its unique predecessor when that predecessor falls
  through into it and has no other way in — longer straight-line blocks
  expose more local optimization (and model the bigger basic blocks the
  paper credits replication with).
"""

from __future__ import annotations

from typing import Set

from ..cfg.block import Function
from ..cfg.graph import compute_flow, reachable_blocks
from ..rtl.insn import Jump

__all__ = ["eliminate_dead_code", "remove_unreachable", "merge_blocks"]


def remove_unreachable(func: Function) -> bool:
    """Delete blocks not reachable from the entry; True if changed."""
    reachable = reachable_blocks(func)
    if len(reachable) == len(func.blocks):
        return False
    kept = [block for block in func.blocks if block in reachable]
    # Deleting a block must not break a fall-through of a survivor: the
    # predecessor of a deleted block never falls through into it (a
    # fall-through edge would have made it reachable), so layout is safe.
    func.blocks = kept
    compute_flow(func)
    return True


def _referenced_labels(func: Function) -> Set[str]:
    labels: Set[str] = set()
    for block in func.blocks:
        term = block.terminator
        if term is not None:
            labels.update(term.branch_targets())
    return labels


def remove_redundant_jumps(func: Function) -> bool:
    """Drop ``PC=L;`` when block L is positionally next; True if changed."""
    changed = False
    for index, block in enumerate(func.blocks[:-1]):
        term = block.terminator
        if isinstance(term, Jump) and func.blocks[index + 1].label == term.target:
            block.insns.pop()
            changed = True
    if changed:
        compute_flow(func)
    return changed


def merge_blocks(func: Function) -> bool:
    """Merge fall-through-only successors into their predecessor."""
    changed = False
    referenced = _referenced_labels(func)
    index = 0
    while index + 1 < len(func.blocks):
        block = func.blocks[index]
        nxt = func.blocks[index + 1]
        if (
            block.falls_through()
            and block.terminator is None
            and nxt.label not in referenced
            and all(p is block for p in nxt.preds)
        ):
            block.insns.extend(nxt.insns)
            del func.blocks[index + 1]
            compute_flow(func)
            referenced = _referenced_labels(func)
            changed = True
            continue  # the merged block may merge again
        index += 1
    return changed


def eliminate_dead_code(func: Function) -> bool:
    """Run all control-flow cleanups to a fixpoint; True if anything changed."""
    changed = False
    progress = True
    while progress:
        progress = False
        if remove_unreachable(func):
            progress = True
        if remove_redundant_jumps(func):
            progress = True
        if merge_blocks(func):
            progress = True
        changed = changed or progress
    return changed
