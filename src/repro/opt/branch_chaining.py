"""Branch chaining: retarget branches whose destination only jumps on.

If a branch (conditional or not) targets a block that consists of a single
unconditional jump, the branch can go straight to the final destination.
Chains of any length are followed, with cycle protection (a chain of jumps
forming a loop is an infinite loop and is left alone).
"""

from __future__ import annotations

from typing import Dict

from ..cfg.block import Function
from ..cfg.graph import compute_flow
from ..rtl.insn import Jump

__all__ = ["branch_chaining"]


def _final_destination(func: Function, label: str) -> str:
    """Follow jump-only blocks from ``label``; return the last label."""
    seen = {label}
    current = label
    while True:
        try:
            block = func.block_by_label(current)
        except KeyError:
            return current
        if len(block.insns) == 1 and isinstance(block.insns[0], Jump):
            nxt = block.insns[0].target
            if nxt in seen:
                return current  # a cycle of jumps: leave it
            seen.add(nxt)
            current = nxt
        else:
            return current


def branch_chaining(func: Function) -> bool:
    """Apply branch chaining to every transfer; return True if changed."""
    changed = False
    cache: Dict[str, str] = {}
    for block in func.blocks:
        term = block.terminator
        if term is None:
            continue
        for target in term.branch_targets():
            final = cache.get(target)
            if final is None:
                final = _final_destination(func, target)
                cache[target] = final
            if final != target:
                term.retarget(target, final)
                changed = True
    if changed:
        compute_flow(func)
    return changed
