"""Instruction selection, VPO style (Davidson/Fraser).

Two directions:

* :func:`legalize` splits RTLs the target cannot express as a single
  instruction into several legal RTLs, materializing sub-expressions into
  fresh registers.  On the RISC target this imposes the load/store
  discipline and simple addressing; on the 68020 it mostly bounds memory
  operands per instruction.

* :func:`combine` merges pairs of RTLs by forward-substituting a register
  definition into its sole use when the combined RTL is still legal.  This
  is what folds loads/stores into 68020 memory-operand instructions and
  immediates into both targets, and what lets replication feed later
  "elimination of instructions" (§3.3.2).
"""

from __future__ import annotations

import itertools
from typing import List, Optional

from ..cfg.block import BasicBlock, Function
from ..rtl.expr import BinOp, Const, Expr, Mem, Reg, UnOp, regs_in
from ..rtl.insn import Assign, Call, Compare, Insn
from ..targets.machine import Machine
from .liveness import Liveness

__all__ = ["legalize", "combine", "RegFactory"]


class RegFactory:
    """Produces fresh registers for legalization.

    Before register allocation it hands out virtual registers; after
    allocation (re-legalizing spill code) it cycles through the target's
    reserved scratch registers.
    """

    def __init__(self, scratch: Optional[List[Reg]] = None, start: int = 0) -> None:
        self._scratch = list(scratch) if scratch else None
        self._cursor = 0
        self._counter = itertools.count(start)

    @classmethod
    def virtual(cls, func: Function) -> "RegFactory":
        highest = -1
        for insn in func.insns():
            for reg in insn.used_regs():
                if reg.bank == "v":
                    highest = max(highest, reg.index)
            defined = insn.defined_reg()
            if defined is not None and defined.bank == "v":
                highest = max(highest, defined.index)
        return cls(start=highest + 1)

    def new(self) -> Reg:
        if self._scratch is not None:
            reg = self._scratch[self._cursor % len(self._scratch)]
            self._cursor += 1
            return reg
        return Reg("v", next(self._counter))


# ---------------------------------------------------------------------------
# Legalization
# ---------------------------------------------------------------------------


def _hoist(expr: Expr, factory: RegFactory, out: List[Insn], target: Machine) -> Reg:
    """Materialize ``expr`` into a fresh register, legally."""
    reg = factory.new()
    insn = Assign(reg, expr)
    _legalize_insn(insn, factory, out, target)
    out.append(insn)
    return reg


def _legal_operand(expr: Expr, target: Machine) -> bool:
    if isinstance(expr, Reg):
        return True
    probe = Assign(Reg("v", 999_999), expr)
    return target.legal(probe)


def _reduce_addr(
    addr: Expr, factory: RegFactory, out: List[Insn], target: Machine
) -> Expr:
    """Rewrite ``addr`` until the target accepts it as an address."""
    guard = 0
    while not target.legal_addr(addr):
        guard += 1
        if guard > 16:
            return _hoist(addr, factory, out, target)
        if isinstance(addr, BinOp) and addr.op == "+":
            # Hoist the structurally larger half first.
            left_simple = isinstance(addr.left, (Reg, Const))
            right_simple = isinstance(addr.right, (Reg, Const))
            if not left_simple:
                addr = BinOp(
                    "+", _hoist(addr.left, factory, out, target), addr.right
                )
            elif not right_simple:
                addr = BinOp(
                    "+", addr.left, _hoist(addr.right, factory, out, target)
                )
            else:
                # reg+reg / reg+const but still illegal (e.g. big const):
                return _hoist(addr, factory, out, target)
        else:
            return _hoist(addr, factory, out, target)
    return addr


def _legalize_src(
    src: Expr, factory: RegFactory, out: List[Insn], target: Machine
) -> Expr:
    """Decompose ``src`` until ``Assign(reg, src)`` would be legal."""
    guard = 0
    while not target.legal(Assign(Reg("v", 999_999), src)):
        guard += 1
        if guard > 24:
            raise RuntimeError(f"cannot legalize source {src!r} for {target.name}")
        if isinstance(src, Mem):
            src = Mem(_reduce_addr(src.addr, factory, out, target), src.width)
            if target.legal(Assign(Reg("v", 999_999), src)):
                break
            # Address legal but the load still refused: hoist fully.
            return _hoist(src, factory, out, target)
        elif isinstance(src, BinOp):
            if not isinstance(src.left, Reg):
                src = BinOp(
                    src.op, _hoist(src.left, factory, out, target), src.right
                )
            elif not _legal_operand(src.right, target) or not target.legal(
                Assign(Reg("v", 999_999), src)
            ):
                src = BinOp(
                    src.op, src.left, _hoist(src.right, factory, out, target)
                )
        elif isinstance(src, UnOp):
            src = UnOp(src.op, _hoist(src.operand, factory, out, target))
        else:
            # A leaf the target refuses in this position (e.g. big const
            # as a store source): materialize it.
            return _hoist(src, factory, out, target)
    return src


def _legalize_insn(
    insn: Insn, factory: RegFactory, out: List[Insn], target: Machine
) -> None:
    """Emit preparatory RTLs into ``out`` and rewrite ``insn`` legally."""
    if isinstance(insn, Assign):
        if isinstance(insn.dst, Mem):
            addr = _reduce_addr(insn.dst.addr, factory, out, target)
            insn.dst = Mem(addr, insn.dst.width)
            if not target.legal(insn):
                # Either the source shape or the total memory-operand count
                # is the problem; try a legal source first, then a register.
                insn.src = _legalize_src(insn.src, factory, out, target)
                if not target.legal(insn):
                    insn.src = _hoist(insn.src, factory, out, target)
        else:
            if not target.legal(insn):
                insn.src = _legalize_src(insn.src, factory, out, target)
    elif isinstance(insn, Compare):
        guard = 0
        while not target.legal(insn):
            guard += 1
            if guard > 8:
                raise RuntimeError(f"cannot legalize {insn!r} for {target.name}")
            if not isinstance(insn.left, Reg):
                insn.left = _hoist(insn.left, factory, out, target)
            elif not isinstance(insn.right, (Reg, Const)) or not target.legal(insn):
                insn.right = _hoist(insn.right, factory, out, target)


def legalize(
    func: Function, target: Machine, factory: Optional[RegFactory] = None
) -> bool:
    """Make every RTL of ``func`` legal for ``target``; True if changed."""
    if factory is None:
        factory = RegFactory.virtual(func)
    changed = False
    for block in func.blocks:
        new_insns: List[Insn] = []
        for insn in block.insns:
            if target.legal(insn):
                new_insns.append(insn)
                continue
            out: List[Insn] = []
            _legalize_insn(insn, factory, out, target)
            if not target.legal(insn):
                raise RuntimeError(
                    f"legalization failed for {insn!r} on {target.name}"
                )
            new_insns.extend(out)
            new_insns.append(insn)
            changed = True
        block.insns = new_insns
    return changed


# ---------------------------------------------------------------------------
# Combining
# ---------------------------------------------------------------------------


def _is_combinable_def(insn: Insn) -> bool:
    if not isinstance(insn, Assign):
        return False
    dst = insn.defined_reg()
    if dst is None or dst.bank in ("cc", "arg"):
        return False
    return True


def _src_reads_mem(expr: Expr) -> bool:
    return any(isinstance(node, Mem) for node in _walk(expr))


def _walk(expr: Expr):
    stack = [expr]
    while stack:
        node = stack.pop()
        yield node
        stack.extend(node.children())


def combine(func: Function, target: Machine) -> bool:
    """Forward-substitute single-use register definitions (per block)."""
    changed = False
    liveness = Liveness(func)
    for block in func.blocks:
        if _combine_block(block, target, liveness):
            changed = True
            liveness = Liveness(func)  # block contents changed
    return changed


def _combine_block(block: BasicBlock, target: Machine, liveness: Liveness) -> bool:
    changed = False
    index = 0
    while index < len(block.insns):
        if _try_combine_at(block, index, target, liveness):
            changed = True
            # The def was deleted; stay at the same index.
            continue
        index += 1
    return changed


def _try_combine_at(
    block: BasicBlock, index: int, target: Machine, liveness: Liveness
) -> bool:
    insn = block.insns[index]
    if not _is_combinable_def(insn):
        return False
    assert isinstance(insn, Assign)
    reg = insn.dst
    assert isinstance(reg, Reg)
    expr = insn.src
    if reg in set(regs_in(expr)):
        return False  # e.g. r = r + 1: nothing to forward
    expr_regs = set(regs_in(expr))
    expr_reads_mem = _src_reads_mem(expr)

    use_at: Optional[int] = None
    dead_after_use = False
    for j in range(index + 1, len(block.insns)):
        other = block.insns[j]
        if use_at is None:
            if reg in other.used_regs():
                use_at = j
                if other.defined_reg() == reg:
                    dead_after_use = True  # e.g. r = r + 1 consumes the def
                    break
                continue
            # Barriers between the definition and its (future) use:
            if other.defined_reg() == reg:
                return False  # dead def; dead-variable elimination's job
            if other.defined_reg() in expr_regs:
                return False
            if expr_reads_mem and (other.stores_mem() or isinstance(other, Call)):
                return False
        else:
            if reg in other.used_regs():
                return False  # a second use: not single-use
            if other.defined_reg() == reg:
                dead_after_use = True
                break
    if use_at is None:
        return False
    if not dead_after_use and reg in liveness.block_live_out(block):
        return False

    user = block.insns[use_at]
    candidate = user.clone()
    candidate.substitute({reg: expr})
    if reg in candidate.used_regs():
        # The use is implicit (Return/Call conventions) or survived the
        # substitution some other way; the definition must stay.
        return False
    if not target.legal(candidate):
        return False
    block.insns[use_at] = candidate
    del block.insns[index]
    return True
