"""Register assignment and allocation by graph colouring.

Two phases, following VPO's structure (Figure 3 lists "register
assignment" early and "register allocation by register coloring" in the
loop):

* :func:`promote_locals` replaces scalar frame slots whose address is
  never taken by virtual registers, turning memory traffic into register
  traffic that the colourer then maps onto machine registers.
* :func:`color_registers` builds an interference graph over the virtual
  registers from liveness, colours it Chaitin-style with the target's
  register pool, and spills the rest back to frame slots (shuttled through
  the target's reserved scratch registers).

Calling convention note: the modelled machines save and restore registers
around calls (callee-saved semantics), so live ranges crossing calls need
no special treatment.  DESIGN.md records this simplification.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from ..cfg.analyses import get_analyses
from ..cfg.block import Function
from ..rtl.expr import Expr, Local, Mem, Reg, walk
from ..rtl.insn import Assign, Compare, IndirectJump, Insn
from ..targets.machine import Machine
from .instruction_selection import RegFactory, legalize
from .liveness import Liveness

__all__ = ["promote_locals", "color_registers"]


# ---------------------------------------------------------------------------
# Local-variable promotion
# ---------------------------------------------------------------------------


def _promotable_locals(func: Function) -> Set[str]:
    """Locals whose every occurrence is exactly ``L[FP+name.]``."""
    seen: Set[str] = set()
    bad: Set[str] = set()

    def scan(expr: Expr) -> None:
        # Walk with parent context: a Local is fine only directly under a
        # 4-byte Mem; anywhere else its address escapes.
        stack: List[Tuple[Expr, Optional[Expr]]] = [(expr, None)]
        while stack:
            node, parent = stack.pop()
            if isinstance(node, Local):
                seen.add(node.name)
                ok = (
                    isinstance(parent, Mem)
                    and parent.width == "L"
                    and parent.addr is node
                )
                if not ok:
                    bad.add(node.name)
            for child in node.children():
                stack.append((child, node))

    for insn in func.insns():
        if isinstance(insn, Assign):
            scan(insn.src)
            scan(insn.dst)
        elif isinstance(insn, Compare):
            scan(insn.left)
            scan(insn.right)
        elif isinstance(insn, IndirectJump):
            scan(insn.addr)
    return seen - bad


def promote_locals(func: Function) -> int:
    """Promote eligible scalar locals to virtual registers; return count."""
    eligible = _promotable_locals(func)
    # Only 4-byte slots are scalars; larger slots are arrays/aggregates.
    eligible = {
        name
        for name in eligible
        if name not in func.frame or func.frame[name][1] == 4
    }
    if not eligible:
        return 0
    factory = RegFactory.virtual(func)
    # Sorted so virtual-register numbering (and every downstream
    # r.index tie-break) is independent of set iteration order.
    mapping: Dict[Expr, Expr] = {
        Mem(Local(name), "L"): factory.new() for name in sorted(eligible)
    }
    for insn in func.insns():
        # Uses first, then a promoted store destination becomes a register
        # definition.
        insn.substitute(mapping)
        if isinstance(insn, Assign) and isinstance(insn.dst, Mem):
            replacement = mapping.get(insn.dst)
            if replacement is not None:
                insn.dst = replacement  # type: ignore[assignment]
    return len(eligible)


# ---------------------------------------------------------------------------
# Colouring
# ---------------------------------------------------------------------------


class AllocationResult:
    """Colour assignments and spill list of one allocation run."""

    def __init__(self) -> None:
        self.assigned: Dict[Reg, Reg] = {}
        self.spilled: List[Reg] = []

    def __repr__(self) -> str:
        return f"<AllocationResult assigned={len(self.assigned)} spilled={len(self.spilled)}>"


def _loop_depths(func: Function) -> Dict[int, int]:
    info = get_analyses(func).loops()
    depths: Dict[int, int] = {id(b): 0 for b in func.blocks}
    for loop in info.loops:
        for block in loop.blocks:
            depths[id(block)] = depths.get(id(block), 0) + 1
    return depths


def _address_regs(func: Function) -> Set[Reg]:
    """Registers that appear inside some memory-address expression."""
    found: Set[Reg] = set()
    for insn in func.insns():
        exprs = list(insn.used_exprs())
        if isinstance(insn, Assign) and isinstance(insn.dst, Mem):
            exprs.append(insn.dst.addr)
        for expr in exprs:
            for node in walk(expr):
                if isinstance(node, Mem):
                    for sub in walk(node.addr):
                        if isinstance(sub, Reg):
                            found.add(sub)
    return found


def color_registers(func: Function, target: Machine) -> AllocationResult:
    """Colour all virtual registers of ``func`` with the target's pool."""
    result = AllocationResult()
    pending = True
    rounds = 0
    while pending:
        rounds += 1
        if rounds > 8:
            raise RuntimeError(f"register allocation did not converge in {func.name}")
        pending = _color_once(func, target, result)
    # Spill shuttling may have produced illegal address arithmetic.
    legalize(func, target, RegFactory(scratch=list(target.scratch)))
    return result


def _color_once(func: Function, target: Machine, result: AllocationResult) -> bool:
    """One colouring attempt; returns True when spilling forced a retry."""
    liveness = Liveness(func)
    vregs: Set[Reg] = set()
    for insn in func.insns():
        defined = insn.defined_reg()
        if defined is not None and defined.bank == "v":
            vregs.add(defined)
        for reg in insn.used_regs():
            if reg.bank == "v":
                vregs.add(reg)
    if not vregs:
        return False

    # Interference: a definition interferes with everything live after it.
    adjacency: Dict[Reg, Set[Reg]] = {reg: set() for reg in vregs}
    for block in func.blocks:
        for insn, live_after in liveness.walk_backward(block):
            defined = insn.defined_reg()
            if defined is None or defined.bank != "v":
                continue
            copy_source = (
                insn.src
                if isinstance(insn, Assign) and isinstance(insn.src, Reg)
                else None
            )
            for other in live_after:
                if other.bank != "v" or other == defined or other == copy_source:
                    continue
                adjacency[defined].add(other)
                adjacency[other].add(defined)

    depths = _loop_depths(func)
    cost: Dict[Reg, float] = {reg: 0.0 for reg in vregs}
    for block in func.blocks:
        weight = 10.0 ** min(depths.get(id(block), 0), 4)
        for insn in block.insns:
            defined = insn.defined_reg()
            if defined in cost:
                cost[defined] += weight
            for reg in insn.used_regs():
                if reg in cost:
                    cost[reg] += weight

    k = len(target.pool)
    work = dict(adjacency)
    degrees = {reg: len(neigh) for reg, neigh in work.items()}
    stack: List[Reg] = []
    remaining = set(vregs)
    while remaining:
        simplifiable = [r for r in remaining if degrees[r] < k]
        if simplifiable:
            reg = min(simplifiable, key=lambda r: (degrees[r], r.index))
        else:
            # Potential spill: cheapest per degree goes on the stack last.
            reg = min(
                remaining,
                key=lambda r: (cost[r] / max(1, degrees[r]), r.index),
            )
        remaining.discard(reg)
        stack.append(reg)
        for neighbour in work[reg]:
            if neighbour in remaining:
                degrees[neighbour] -= 1

    address_regs = _address_regs(func)
    colors: Dict[Reg, Reg] = {}
    spills: List[Reg] = []
    while stack:
        reg = stack.pop()
        taken = {
            colors[n] for n in adjacency[reg] if n in colors
        }
        choice = None
        for candidate in target.preferred_regs(reg in address_regs):
            if candidate not in taken:
                choice = candidate
                break
        if choice is None:
            spills.append(reg)
        else:
            colors[reg] = choice

    if spills:
        _spill(func, target, spills)
        result.spilled.extend(spills)
        return True

    # Apply the colouring.
    mapping: Dict[Expr, Expr] = dict(colors)
    for insn in func.insns():
        insn.substitute(mapping)
        if isinstance(insn, Assign) and isinstance(insn.dst, Reg):
            replacement = colors.get(insn.dst)
            if replacement is not None:
                insn.dst = replacement
    result.assigned.update(colors)
    return False


def _spill(func: Function, target: Machine, spills: List[Reg]) -> None:
    """Rewrite spilled virtual registers through frame slots."""
    slots: Dict[Reg, Mem] = {}
    for reg in spills:
        name = f"_spill_v{reg.index}"
        if name not in func.frame:
            func.add_local(name, 4)
        slots[reg] = Mem(Local(name), "L")

    scratch = list(target.scratch)
    for block in func.blocks:
        new_insns: List[Insn] = []
        for insn in block.insns:
            used = [r for r in insn.used_regs() if r in slots]
            loads: Dict[Reg, Reg] = {}
            for i, reg in enumerate(sorted(set(used), key=lambda r: r.index)):
                shuttle = scratch[i % len(scratch)]
                new_insns.append(Assign(shuttle, slots[reg]))
                loads[reg] = shuttle
            if loads:
                insn.substitute(dict(loads))
            defined = insn.defined_reg()
            if isinstance(insn, Assign) and defined in slots:
                shuttle = scratch[-1]
                store_slot = slots[defined]  # type: ignore[index]
                insn.dst = shuttle
                new_insns.append(insn)
                new_insns.append(Assign(store_slot, shuttle))
            else:
                new_insns.append(insn)
        block.insns = new_insns
