"""Loop-invariant code motion, with preheader creation.

Invariant register assignments are hoisted into the loop's preheader — a
block created (or reused) immediately before the loop header in the layout,
so that external control falls through it into the loop while back edges
keep targeting the header.

The paper's §3.3.3 ("Relocating the Preheader of Loops") relies on the
interaction between this pass and code replication: after replication the
preheader may end up on one side of a conditional branch, so the hoisted
instructions are skipped entirely when the loop does not execute.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from ..cfg.analyses import get_analyses
from ..cfg.block import BasicBlock, Function
from ..cfg.graph import compute_flow
from ..cfg.loops import Loop
from ..rtl.expr import Expr, Mem, Reg, walk
from ..rtl.insn import Assign, Call, Insn
from .liveness import Liveness

__all__ = ["loop_invariant_code_motion", "ensure_preheader"]


def ensure_preheader(func: Function, loop: Loop) -> BasicBlock:
    """Return the loop's preheader, creating one when necessary.

    An existing block qualifies when it is the positional predecessor of
    the header, falls through into it, is outside the loop, and is the
    *only* external predecessor.
    """
    header = loop.header
    external = [p for p in header.preds if p not in loop.blocks]
    index = func.block_index(header)
    if (
        len(external) == 1
        and index > 0
        and func.blocks[index - 1] is external[0]
        and external[0].terminator is None
    ):
        return external[0]

    # A loop member may reach the header by positional fall-through (a
    # fall-through back edge); it must not run through the preheader, so
    # make its back edge explicit first.
    if index > 0:
        before = func.blocks[index - 1]
        if before in loop.blocks and before.falls_through():
            from ..rtl.insn import Jump

            if before.terminator is None:
                before.insns.append(Jump(header.label))
            else:
                # A conditional branch falls through into the header: give
                # it a landing block that jumps to the header instead.
                landing = BasicBlock(func.new_label(), [Jump(header.label)])
                func.blocks.insert(index, landing)
                index += 1

    preheader = BasicBlock(func.new_label())
    func.blocks.insert(index, preheader)
    # External predecessors that *branch* to the header must branch to the
    # preheader instead; the positional predecessor now falls through into
    # the preheader, which falls through into the header.
    for pred in external:
        term = pred.terminator
        if term is not None:
            term.retarget(header.label, preheader.label)
    compute_flow(func)
    return preheader


def _defined_regs_in_loop(loop: Loop) -> Dict[Reg, int]:
    counts: Dict[Reg, int] = {}
    for block in loop.blocks:
        for insn in block.insns:
            reg = insn.defined_reg()
            if reg is not None:
                counts[reg] = counts.get(reg, 0) + 1
    return counts


def _loop_has_stores_or_calls(loop: Loop) -> bool:
    for block in loop.blocks:
        for insn in block.insns:
            if insn.stores_mem() or isinstance(insn, Call):
                return True
    return False


def _may_trap(expr: Expr) -> bool:
    for node in walk(expr):
        op = getattr(node, "op", None)
        if op in ("/", "%"):
            return True
    return False


def _reads_mem(expr: Expr) -> bool:
    return any(isinstance(node, Mem) for node in walk(expr))


def loop_invariant_code_motion(func: Function) -> bool:
    """Hoist invariant assignments out of natural loops; True if changed."""
    changed = False
    # Innermost first (fewest blocks first).  After every successful hoist
    # the loop structure is *recomputed from scratch*: hoisting creates
    # preheader blocks inside enclosing loops, and stale member sets would
    # otherwise miss the definitions they carry.
    guard = 0
    while True:
        guard += 1
        if guard > 100:
            break
        info = get_analyses(func).loops()
        progress = False
        for loop in sorted(info.loops, key=lambda l: len(l.blocks)):
            if _hoist_from_loop(func, loop):
                progress = True
                changed = True
                break
        if not progress:
            break
    return changed


def _hoist_from_loop(func: Function, loop: Loop) -> bool:
    defs = _defined_regs_in_loop(loop)
    loop_writes_mem = _loop_has_stores_or_calls(loop)
    dom = get_analyses(func).dominators()
    liveness = Liveness(func)
    exits = loop.exits()
    header_live_in = liveness.block_live_in(loop.header)

    candidates: List[Insn] = []
    extra_deletions: List[Tuple[BasicBlock, Insn]] = []
    homes: Dict[int, BasicBlock] = {}
    hoisted_regs: Set[Reg] = set()

    # Multi-def case first: when *every* definition of a register in the
    # loop is the identical invariant, non-trapping assignment (a common
    # result of replicating loop entries — e.g. address formation repeated
    # in two rotated-loop headers), hoist one copy and delete the rest.
    multi = _identical_invariant_defs(
        func, loop, defs, loop_writes_mem, header_live_in
    )
    for reg, (keeper, keeper_block, duplicates) in multi.items():
        candidates.append(keeper)
        homes[id(keeper)] = keeper_block
        hoisted_regs.add(reg)
        extra_deletions.extend(duplicates)

    for block in loop.members_in_layout_order(func):
        for insn in block.insns:
            if not isinstance(insn, Assign) or not isinstance(insn.dst, Reg):
                continue
            reg = insn.dst
            if reg.bank in ("arg", "rv", "cc") or reg in hoisted_regs:
                continue
            if defs.get(reg, 0) != 1:
                continue
            src_regs = set()
            for node in walk(insn.src):
                if isinstance(node, Reg):
                    src_regs.add(node)
            if any(r in defs or r in hoisted_regs for r in src_regs):
                continue  # operands vary within the loop
            if reg in src_regs:
                continue
            if _reads_mem(insn.src) and loop_writes_mem:
                continue
            if reg in header_live_in:
                continue  # the pre-loop value of reg is observable
            dominates_exits = all(
                dom.dominates(block, exit_block) for exit_block, _ in exits
            )
            if not dominates_exits:
                if _may_trap(insn.src):
                    continue
                live_at_exit = any(
                    reg in liveness.block_live_in(outside)
                    for _, outside in exits
                )
                if live_at_exit:
                    continue
            candidates.append(insn)
            homes[id(insn)] = block
            hoisted_regs.add(reg)

    if not candidates:
        return False
    preheader = ensure_preheader(func, loop)
    for insn in candidates:
        homes[id(insn)].insns.remove(insn)
        # Preheaders have no terminator, so appending keeps them valid.
        preheader.insns.append(insn)
    for block, duplicate in extra_deletions:
        block.insns.remove(duplicate)
    compute_flow(func)
    return True


def _identical_invariant_defs(
    func: Function,
    loop: Loop,
    defs: Dict[Reg, int],
    loop_writes_mem: bool,
    header_live_in,
) -> Dict[Reg, Tuple[Insn, BasicBlock, List[Tuple[BasicBlock, Insn]]]]:
    """Registers whose in-loop defs are all the same invariant assignment.

    Returns, per register: the definition to hoist, its home block, and
    the duplicate definitions to delete.
    """
    sites: Dict[Reg, List[Tuple[BasicBlock, Insn]]] = {}
    for block in loop.members_in_layout_order(func):
        for insn in block.insns:
            if isinstance(insn, Assign) and isinstance(insn.dst, Reg):
                sites.setdefault(insn.dst, []).append((block, insn))
    result: Dict[Reg, Tuple[Insn, BasicBlock, List[Tuple[BasicBlock, Insn]]]] = {}
    for reg, places in sites.items():
        if len(places) < 2 or reg.bank in ("arg", "rv", "cc"):
            continue
        if defs.get(reg, 0) != len(places):
            continue  # defined by non-Assign instructions too (e.g. Call)
        first_src = places[0][1].src
        if any(insn.src != first_src for _, insn in places[1:]):
            continue
        src_regs = {node for node in walk(first_src) if isinstance(node, Reg)}
        if reg in src_regs or any(r in defs for r in src_regs):
            continue
        if _may_trap(first_src):
            continue
        if _reads_mem(first_src) and loop_writes_mem:
            continue
        if reg in header_live_in:
            continue
        keeper_block, keeper = places[0]
        result[reg] = (keeper, keeper_block, places[1:])
    return result
