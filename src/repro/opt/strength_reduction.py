"""Strength reduction of induction-variable multiplications.

The classic transformation (Figure 3 lists "strength reduction" and
"recurrences" in VPO's optimization loop): for a basic induction variable
``i`` (single definition ``i = i + c`` in the loop) and a use ``i * k``
with constant ``k``, introduce a register ``s`` holding ``i * k``,
initialized in the preheader and advanced by ``c * k`` next to ``i``'s
increment, then replace the multiplication.

This is what turns array indexing (``base + i*4``) into the pointer-walk
style code visible in the paper's Table 1 (``a[0]=a[0]+1``).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..cfg.analyses import get_analyses
from ..cfg.block import BasicBlock, Function
from ..cfg.graph import compute_flow
from ..cfg.loops import Loop
from ..rtl.expr import BinOp, Const, Expr, Reg, map_expr
from ..rtl.insn import Assign, Insn
from .code_motion import ensure_preheader
from .instruction_selection import RegFactory

__all__ = ["strength_reduce"]


def _increment_of(insn: Insn, reg: Reg) -> Optional[int]:
    """The constant c when ``insn`` is ``reg = reg ± c``, else ``None``."""
    if not isinstance(insn, Assign):
        return None
    src = insn.src
    if (
        isinstance(src, BinOp)
        and src.op in ("+", "-")
        and src.left == reg
        and isinstance(src.right, Const)
    ):
        return src.right.value if src.op == "+" else -src.right.value
    return None


def _find_basic_ivs(
    func: Function, loop: Loop
) -> Dict[Reg, List[Tuple[Insn, int, BasicBlock]]]:
    """Registers whose every in-loop def is ``i = i ± c`` (same ``c``).

    Code replication duplicates loop-closing increments, so a basic
    induction variable may legitimately have several identical update
    sites; the derived register is then advanced after each of them.
    Blocks are scanned in layout order so the resulting dict order (and
    hence derived-register numbering) is deterministic.
    """
    defs: Dict[Reg, List[Tuple[Insn, BasicBlock]]] = {}
    for block in loop.members_in_layout_order(func):
        for insn in block.insns:
            reg = insn.defined_reg()
            if reg is not None:
                defs.setdefault(reg, []).append((insn, block))
    ivs: Dict[Reg, List[Tuple[Insn, int, BasicBlock]]] = {}
    for reg, sites in defs.items():
        steps = [(_increment_of(insn, reg), insn, block) for insn, block in sites]
        if any(step is None for step, _, _ in steps):
            continue
        constants = {step for step, _, _ in steps}
        if len(constants) != 1:
            continue
        ivs[reg] = [(insn, step, block) for step, insn, block in steps]
    return ivs


def _multiplications_of(func: Function, loop: Loop, iv: Reg) -> List[Expr]:
    """Distinct ``iv * k`` expressions used inside the loop, layout order."""
    found: Dict[Expr, None] = {}
    for block in loop.members_in_layout_order(func):
        for insn in block.insns:
            for expr in insn.used_exprs():
                for node in _walk(expr):
                    if (
                        isinstance(node, BinOp)
                        and node.op == "*"
                        and node.left == iv
                        and isinstance(node.right, Const)
                        and node.right.value not in (0, 1)
                    ):
                        found[node] = None
    return list(found)


def _walk(expr: Expr):
    stack = [expr]
    while stack:
        node = stack.pop()
        yield node
        stack.extend(node.children())


def strength_reduce(func: Function) -> bool:
    """Strength-reduce induction-variable multiplies; True if changed."""
    changed = False
    factory = RegFactory.virtual(func)
    # Re-detect loops after every change: reductions add preheader blocks,
    # and stale loop member sets would misclassify the new definitions.
    guard = 0
    while True:
        guard += 1
        if guard > 100:
            break
        info = get_analyses(func).loops()
        progress = False
        for loop in sorted(info.loops, key=lambda l: len(l.blocks)):
            if _reduce_loop(func, loop, factory):
                progress = True
                changed = True
                break
        if not progress:
            break
    return changed


def _reduce_loop(func: Function, loop: Loop, factory: RegFactory) -> bool:
    ivs = _find_basic_ivs(func, loop)
    if not ivs:
        return False
    plans = []
    for iv, sites in ivs.items():
        for product in _multiplications_of(func, loop, iv):
            plans.append((iv, sites, product))
    if not plans:
        return False

    preheader = ensure_preheader(func, loop)
    for iv, sites, product in plans:
        assert isinstance(product, BinOp)
        k = product.right
        assert isinstance(k, Const)
        derived = factory.new()
        preheader.insns.append(Assign(derived, BinOp("*", iv, k)))
        update_sites = {id(insn) for insn, _, _ in sites}

        # Replace iv*k everywhere in the loop, *before* inserting the
        # updates so the updates themselves are not rewritten.
        def replace(node: Expr) -> Expr:
            if node == product:
                return derived
            return node

        for block in loop.blocks:
            for insn in block.insns:
                if id(insn) in update_sites:
                    continue
                _rewrite_insn(insn, replace)

        # Advance the derived register right after *each* IV increment.
        for iv_insn, step, iv_block in sites:
            position = iv_block.insns.index(iv_insn) + 1
            iv_block.insns.insert(
                position,
                Assign(derived, BinOp("+", derived, Const(step * k.value))),
            )
    compute_flow(func)
    return True


def _rewrite_insn(insn: Insn, replace) -> None:
    from ..rtl.expr import Mem
    from ..rtl.insn import Compare, IndirectJump

    if isinstance(insn, Assign):
        insn.src = map_expr(insn.src, replace)
        if isinstance(insn.dst, Mem):
            insn.dst = Mem(map_expr(insn.dst.addr, replace), insn.dst.width)
    elif isinstance(insn, Compare):
        insn.left = map_expr(insn.left, replace)
        insn.right = map_expr(insn.right, replace)
    elif isinstance(insn, IndirectJump):
        insn.addr = map_expr(insn.addr, replace)
