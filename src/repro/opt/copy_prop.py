"""Global copy propagation for single-definition registers.

A restricted, safe global form: when ``x = y`` is the *only* definition of
``x`` in the function, and ``y`` also has exactly one definition (and is
therefore never overwritten), every use of ``x`` can read ``y`` directly.
Chains resolve transitively.  The copies themselves become dead and are
removed by dead-variable elimination.

This matters after code replication: copies of invariant computations are
hoisted as distinct registers holding the same value, and the per-replica
register names would otherwise defeat the loop optimizations (the paper's
§3.3.2 expects exactly this kind of cleanup from "common subexpression
elimination" — VPO's CSE is global; ours is local CSE plus this pass).
"""

from __future__ import annotations

from typing import Dict

from ..cfg.block import Function
from ..rtl.expr import Reg
from ..rtl.insn import Assign

__all__ = ["propagate_copies"]


def propagate_copies(func: Function) -> bool:
    """Propagate single-def-to-single-def register copies; True if changed."""
    def_counts: Dict[Reg, int] = {}
    for insn in func.insns():
        reg = insn.defined_reg()
        if reg is not None:
            def_counts[reg] = def_counts.get(reg, 0) + 1

    mapping: Dict[Reg, Reg] = {}
    for insn in func.insns():
        if (
            isinstance(insn, Assign)
            and isinstance(insn.dst, Reg)
            and isinstance(insn.src, Reg)
            and insn.dst != insn.src
            and insn.dst.bank == "v"
            and insn.src.bank == "v"
            and def_counts.get(insn.dst) == 1
            and def_counts.get(insn.src) == 1
        ):
            mapping[insn.dst] = insn.src
    if not mapping:
        return False

    def resolve(reg: Reg) -> Reg:
        seen = set()
        while reg in mapping and reg not in seen:
            seen.add(reg)
            reg = mapping[reg]
        return reg

    final = {x: resolve(x) for x in mapping}
    final = {x: y for x, y in final.items() if x != y}
    if not final:
        return False
    changed = False
    for insn in func.insns():
        if any(reg in final for reg in insn.used_regs()):
            insn.substitute(dict(final))
            changed = True
    return changed
