"""The VPO-like optimizer: all standard passes plus the Figure-3 driver."""

from .branch_chaining import branch_chaining
from .code_motion import ensure_preheader, loop_invariant_code_motion
from .const_fold import fold_branches, fold_constants, simplify_expr
from .copy_prop import propagate_copies
from .cse import local_cse
from .dead_code import eliminate_dead_code, merge_blocks, remove_unreachable
from .dead_vars import eliminate_dead_variables
from .driver import OptimizationConfig, optimize_function, optimize_program
from .instruction_selection import RegFactory, combine, legalize
from .instrument import PassInstrumentation, PassRecord
from .liveness import Liveness
from .regalloc import color_registers, promote_locals
from .reorder import reorder_blocks
from .strength_reduction import strength_reduce

__all__ = [
    "branch_chaining",
    "ensure_preheader",
    "loop_invariant_code_motion",
    "fold_branches",
    "fold_constants",
    "simplify_expr",
    "local_cse",
    "propagate_copies",
    "eliminate_dead_code",
    "merge_blocks",
    "remove_unreachable",
    "eliminate_dead_variables",
    "OptimizationConfig",
    "optimize_function",
    "optimize_program",
    "PassInstrumentation",
    "PassRecord",
    "RegFactory",
    "combine",
    "legalize",
    "Liveness",
    "color_registers",
    "promote_locals",
    "reorder_blocks",
    "strength_reduce",
]
