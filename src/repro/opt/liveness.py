"""Global register liveness analysis.

A classic backward dataflow over the CFG.  Only registers are tracked
(memory is handled conservatively by the passes that need it).  Results
are exposed per block (live-in / live-out sets) plus an in-block iterator
that walks instructions backwards yielding the live-after set of each.

Special registers:

* the return-value register ``rv[0]`` is used by ``Return`` instructions,
  so it is naturally live where it matters;
* argument registers are used by ``Call`` instructions;
* the condition-code register ``cc`` behaves like any other register.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Set, Tuple

from ..cfg.block import BasicBlock, Function
from ..rtl.expr import Reg
from ..rtl.insn import Insn

__all__ = ["Liveness"]


class Liveness:
    """Live-register sets for one function."""

    def __init__(self, func: Function) -> None:
        self.func = func
        self.live_in: Dict[int, Set[Reg]] = {}
        self.live_out: Dict[int, Set[Reg]] = {}
        self._compute()

    def _compute(self) -> None:
        use: Dict[int, Set[Reg]] = {}
        defs: Dict[int, Set[Reg]] = {}
        for block in self.func.blocks:
            u: Set[Reg] = set()
            d: Set[Reg] = set()
            for insn in block.insns:
                for reg in insn.used_regs():
                    if reg not in d:
                        u.add(reg)
                defined = insn.defined_reg()
                if defined is not None:
                    d.add(defined)
            use[id(block)] = u
            defs[id(block)] = d
            self.live_in[id(block)] = set()
            self.live_out[id(block)] = set()

        changed = True
        while changed:
            changed = False
            # Iterate in reverse layout order: close to postorder for the
            # common fall-through-heavy CFGs, converging quickly.
            for block in reversed(self.func.blocks):
                out: Set[Reg] = set()
                for succ in block.succs:
                    out |= self.live_in[id(succ)]
                new_in = use[id(block)] | (out - defs[id(block)])
                if out != self.live_out[id(block)] or new_in != self.live_in[id(block)]:
                    self.live_out[id(block)] = out
                    self.live_in[id(block)] = new_in
                    changed = True

    # --- queries --------------------------------------------------------------

    def block_live_out(self, block: BasicBlock) -> Set[Reg]:
        return self.live_out[id(block)]

    def block_live_in(self, block: BasicBlock) -> Set[Reg]:
        return self.live_in[id(block)]

    def walk_backward(
        self, block: BasicBlock
    ) -> Iterator[Tuple[Insn, Set[Reg]]]:
        """Yield ``(insn, live_after)`` for each instruction, last first.

        The yielded set is shared and mutated between iterations; callers
        must copy it if they keep it.
        """
        live = set(self.live_out[id(block)])
        for insn in reversed(block.insns):
            yield insn, live
            defined = insn.defined_reg()
            if defined is not None:
                live.discard(defined)
            live.update(insn.used_regs())

    def live_after_each(self, block: BasicBlock) -> List[Set[Reg]]:
        """Live-after set per instruction, in forward order (copied sets)."""
        result = [set(live) for _, live in self.walk_backward(block)]
        result.reverse()
        return result
