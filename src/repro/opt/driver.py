"""The optimizer driver — Figure 3 of the paper.

::

    branch chaining;
    dead code elimination;
    reorder basic blocks to minimize jumps;
    code replication (either JUMPS or LOOPS);
    dead code elimination;

    instruction selection;
    register assignment;
    if (change) instruction selection;
    do {
      register allocation by register coloring;
      instruction selection;
      common subexpression elimination;
      dead variable elimination;
      code motion;
      strength reduction;
      recurrences;
      instruction selection;
      branch chaining;
      constant folding at conditional branches;
      code replication (either JUMPS or LOOPS);
      dead code elimination;
    } while (change);
    filling of delay slots for RISCs;

One deviation, recorded in DESIGN.md: the colouring register allocator
runs *after* the optimization loop instead of inside it, so the loop
optimizes over virtual registers (promotion of memory locals to registers
— VPO's "register allocation" effect — runs inside the loop as in the
figure).  The final replication invocation passes ``allow_irreducible``
to pick up jumps kept for reducibility, as described in §5.1.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter
from typing import Callable, Dict, Optional

from ..cfg.block import Function, Program
from ..cfg.graph import check_function, compute_flow
from ..core.replication import CodeReplicator, Policy, ReplicationMode, ReplicationStats
from ..obs import active as _active_observer
from ..obs.tracer import NULL_SPAN
from ..targets.delay_slots import fill_delay_slots
from ..targets.machine import Machine, get_target
from .branch_chaining import branch_chaining
from .instrument import PassInstrumentation, jump_count, rtl_count
from .code_motion import loop_invariant_code_motion
from .const_fold import fold_branches, fold_constants
from .copy_prop import propagate_copies
from .cse import local_cse
from .dead_code import eliminate_dead_code
from .dead_vars import eliminate_dead_variables
from .instruction_selection import combine, legalize
from .reorder import reorder_blocks
from .regalloc import color_registers, promote_locals
from .strength_reduction import strength_reduce

__all__ = [
    "PASS_ORDERS",
    "FunctionTuning",
    "OptimizationConfig",
    "optimize_function",
    "optimize_program",
]


#: Pass-ordering variants the autotuner may choose per function.
#:
#: * ``standard`` — the Figure-3 pipeline exactly as the paper gives it.
#: * ``late`` — skip the prologue replication invocation; replication
#:   first runs inside the do-while loop, over already-selected and
#:   promoted code (some functions replicate better once dead code and
#:   branch chaining have settled).
#: * ``nofinal`` — skip the final ``allow_irreducible`` invocation
#:   (§5.1); keeps jumps whose replication would make the graph
#:   irreducible, trading a few dynamic jumps for less growth.
PASS_ORDERS = ("standard", "late", "nofinal")


@dataclass(frozen=True)
class FunctionTuning:
    """A per-function replication setting chosen by the autotuner.

    Fully specified (no inherit-from-global semantics): the tuner always
    emits a complete (policy, max_rtls, order) triple per function, so a
    tuned run is reproducible without knowing the global defaults it was
    swept against.
    """

    policy: Policy = Policy.SHORTEST
    max_rtls: Optional[int] = None
    order: str = "standard"

    def __post_init__(self) -> None:
        if self.order not in PASS_ORDERS:
            raise ValueError(
                f"order must be one of {PASS_ORDERS}, got {self.order!r}"
            )


@dataclass
class OptimizationConfig:
    """What to run: the paper's SIMPLE / LOOPS / JUMPS configurations."""

    #: "none" (SIMPLE), "loops" (LOOPS) or "jumps" (JUMPS).
    replication: str = "none"
    #: Step-2 heuristic for JUMPS.
    policy: Policy = Policy.SHORTEST
    #: §6 future-work bound on replication sequence length (RTLs).
    max_rtls: Optional[int] = None
    #: Maximum iterations of the do-while optimization loop.
    max_iterations: int = 8
    #: Run the final allow-irreducible replication invocation (§5.1).
    final_replication: bool = True
    #: Fill RISC delay slots at the end (disabled by the profile-guided
    #: extension, which replicates after an instrumented training run).
    fill_delay_slots: bool = True
    #: Debug: run the CFG invariant validator after every pass.
    validate_cfg: bool = False
    #: Step-1 shortest-path engine for replication ("lazy" / "dense");
    #: ``None`` defers to ``REPRO_SPM_ENGINE`` and the default ("lazy").
    spm_engine: Optional[str] = None
    #: Per-function (policy, max_rtls, order) overrides emitted by the
    #: autotuner; functions not named here use the global settings above.
    overrides: Dict[str, FunctionTuning] = field(default_factory=dict)
    #: The replication engine's §5.2 convergence guard.  Always on in
    #: production; tests pinning the backstop valves switch it off.
    convergence_guard: bool = True

    def __post_init__(self) -> None:
        if self.replication not in ("none", "loops", "jumps"):
            raise ValueError(
                f"replication must be none/loops/jumps, got {self.replication!r}"
            )
        if self.spm_engine not in (None, "lazy", "dense"):
            raise ValueError(
                f"spm_engine must be lazy/dense, got {self.spm_engine!r}"
            )

    def tuning_for(self, function_name: str) -> FunctionTuning:
        """The effective replication tuning for one function."""
        tuning = self.overrides.get(function_name)
        if tuning is not None:
            return tuning
        return FunctionTuning(
            policy=self.policy, max_rtls=self.max_rtls, order="standard"
        )


def _make_replicator(
    config: OptimizationConfig,
    tuning: FunctionTuning,
    allow_irreducible: bool = False,
    after_sweep: Optional[Callable] = None,
):
    if config.replication == "none":
        return None
    if config.replication == "loops":
        return CodeReplicator(
            mode=ReplicationMode.LOOPS,
            policy=Policy.FAVOR_LOOPS,
            engine=config.spm_engine,
            after_sweep=after_sweep,
            convergence_guard=config.convergence_guard,
        )
    return CodeReplicator(
        mode=ReplicationMode.JUMPS,
        policy=tuning.policy,
        max_rtls=tuning.max_rtls,
        allow_irreducible=allow_irreducible,
        engine=config.spm_engine,
        after_sweep=after_sweep,
        convergence_guard=config.convergence_guard,
    )


def optimize_function(
    func: Function,
    target: Machine,
    config: OptimizationConfig,
    instrumentation: Optional[PassInstrumentation] = None,
    verifier=None,
) -> ReplicationStats:
    """Run the Figure-3 pipeline over ``func`` in place.

    With ``instrumentation`` given, every pass invocation is timed and
    bracketed by an RTL / jump census (see :mod:`repro.opt.instrument`).
    With an ambient observer installed (:func:`repro.obs.active`), every
    pass additionally becomes a tracer span nested under an
    ``opt.function`` root, and pass/change counters land in the metrics
    registry.  With ``config.validate_cfg`` set, the CFG invariant
    validator runs after every pass and raises ``AssertionError`` on the
    first pass that leaves the graph inconsistent.

    ``verifier`` is a translation-validation hook object (see
    :mod:`repro.verify.verifier`): ``allow_pass`` gates every pass
    invocation — a False answer skips the pass, which is how bisection
    replays stop the pipeline after exactly ``k`` invocations — and
    ``after_pass`` sanitizes the function once the pass ran.
    """
    stats = ReplicationStats()
    obs = _active_observer()
    tracer = obs.tracer if obs is not None and obs.tracer.enabled else None
    observe = (
        instrumentation is not None or config.validate_cfg or obs is not None
    )
    tuning = config.tuning_for(func.name)

    def step(name: str, pass_fn: Callable[[], object]) -> bool:
        if verifier is not None and not verifier.allow_pass(func, name):
            return False
        if not observe:
            outcome = bool(pass_fn())
            if verifier is not None:
                verifier.after_pass(func, name)
            return outcome
        rtls_before = rtl_count(func)
        jumps_before = jump_count(func)
        start = perf_counter()
        with (
            tracer.span(f"opt.{name}") if tracer is not None else NULL_SPAN
        ) as span:
            outcome = pass_fn()
        elapsed = perf_counter() - start
        rtl_delta = rtl_count(func) - rtls_before
        jumps_removed = jumps_before - jump_count(func)
        span.set(
            rtl_delta=rtl_delta,
            jumps_removed=jumps_removed,
            changed=bool(outcome),
        )
        if instrumentation is not None:
            instrumentation.record(
                name, elapsed, rtl_delta, jumps_removed, bool(outcome)
            )
        if obs is not None:
            obs.metrics.inc("opt.pass_invocations")
            if outcome:
                obs.metrics.inc("opt.pass_changes")
        if config.validate_cfg:
            try:
                check_function(func)
            except AssertionError as exc:
                raise AssertionError(
                    f"CFG invariants violated after pass {name!r}: {exc}"
                ) from exc
        if verifier is not None:
            verifier.after_pass(func, name)
        return bool(outcome)

    def replicate(allow_irreducible: bool = False) -> bool:
        after_sweep = verifier.after_sweep if verifier is not None else None
        replicator = _make_replicator(
            config, tuning, allow_irreducible, after_sweep
        )
        if replicator is None:
            return False
        run_stats = replicator.run(func)
        stats.merge(run_stats)
        return run_stats.jumps_replaced > 0

    with (
        tracer.span(
            "opt.function", function=func.name, replication=config.replication
        )
        if tracer is not None
        else NULL_SPAN
    ) as function_span:
        # --- prologue --------------------------------------------------------
        step("branch_chaining", lambda: branch_chaining(func))
        step("dead_code", lambda: eliminate_dead_code(func))
        step("reorder_blocks", lambda: reorder_blocks(func))
        step("dead_code", lambda: eliminate_dead_code(func))
        if tuning.order != "late":
            step("replication", replicate)
            step("dead_code", lambda: eliminate_dead_code(func))

        # --- instruction selection & register assignment ----------------------
        step("const_fold", lambda: fold_constants(func))
        step("legalize", lambda: legalize(func, target))
        if step("combine", lambda: combine(func, target)):
            step("legalize", lambda: legalize(func, target))
        step("promote_locals", lambda: promote_locals(func))
        step("legalize", lambda: legalize(func, target))
        step("combine", lambda: combine(func, target))

        # --- the do-while optimization loop -----------------------------------
        iterations = 0
        for _ in range(config.max_iterations):
            iterations += 1
            changed = False
            changed |= step("local_cse", lambda: local_cse(func, target))
            changed |= step("copy_prop", lambda: propagate_copies(func))
            changed |= step("const_fold", lambda: fold_constants(func))
            changed |= step("legalize", lambda: legalize(func, target))
            changed |= step("dead_vars", lambda: eliminate_dead_variables(func))
            changed |= step("code_motion", lambda: loop_invariant_code_motion(func))
            changed |= step("strength_reduction", lambda: strength_reduce(func))
            changed |= step("legalize", lambda: legalize(func, target))
            changed |= step("combine", lambda: combine(func, target))
            changed |= step("branch_chaining", lambda: branch_chaining(func))
            changed |= step("fold_branches", lambda: fold_branches(func))
            changed |= step("replication", replicate)
            changed |= step("dead_code", lambda: eliminate_dead_code(func))
            if not changed:
                break

        # --- epilogue ----------------------------------------------------------
        if (
            config.final_replication
            and config.replication == "jumps"
            and tuning.order != "nofinal"
        ):
            if step("replication_final", lambda: replicate(allow_irreducible=True)):
                step("dead_code", lambda: eliminate_dead_code(func))
                step("dead_vars", lambda: eliminate_dead_variables(func))

        step("regalloc", lambda: color_registers(func, target))
        step("legalize", lambda: legalize(func, target))
        step("dead_code", lambda: eliminate_dead_code(func))
        if target.has_delay_slots and config.fill_delay_slots:
            step("delay_slots", lambda: fill_delay_slots(func))
        compute_flow(func)
        function_span.set(
            iterations=iterations,
            jumps_replaced=stats.jumps_replaced,
            rtls_replicated=stats.rtls_replicated,
        )
    if obs is not None:
        obs.metrics.observe("opt.loop_iterations", iterations)
    return stats


def optimize_program(
    program: Program,
    target,
    config: Optional[OptimizationConfig] = None,
    instrumentation: Optional[PassInstrumentation] = None,
    verifier=None,
) -> ReplicationStats:
    """Optimize every function of ``program``; return merged replication stats.

    With a ``verifier`` (see :mod:`repro.verify.verifier`), the pristine
    program is snapshotted before the first pass and the differential
    oracle re-checks observable behaviour after every function and at the
    end; a divergence raises
    :class:`~repro.verify.errors.MiscompileError` after bisecting to the
    guilty pass.
    """
    if isinstance(target, str):
        target = get_target(target)
    if config is None:
        config = OptimizationConfig()
    if verifier is not None:
        verifier.begin(program, target, config)
    total = ReplicationStats()
    for func in program.functions.values():
        total.merge(
            optimize_function(func, target, config, instrumentation, verifier)
        )
        if verifier is not None:
            verifier.after_function(func)
    if verifier is not None:
        verifier.finish()
    return total
