"""Per-pass instrumentation — compatibility shim over :mod:`repro.obs`.

PR 1 introduced :class:`PassInstrumentation` here; the storage and
aggregation now live in :mod:`repro.obs.passes` (the unified
observability subsystem), and this module re-exports them so existing
call sites and pickled records keep working unchanged:

* :class:`PassRecord` — one timed pass invocation with its RTL /
  unconditional-jump census delta;
* :class:`PassInstrumentation` — a :class:`repro.obs.passes.PassTimeline`
  under its historical name;
* :func:`rtl_count` / :func:`jump_count` — the census helpers.

New code should prefer the ambient observer (``repro.obs.active()``)
which additionally records spans and metrics; the optimizer driver
feeds both when both are present.
"""

from __future__ import annotations

from ..obs.passes import PassRecord, PassTimeline, jump_count, rtl_count

__all__ = ["PassRecord", "PassInstrumentation", "rtl_count", "jump_count"]


class PassInstrumentation(PassTimeline):
    """Historical name for :class:`repro.obs.passes.PassTimeline`."""
