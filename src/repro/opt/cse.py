"""Common-subexpression elimination by local value numbering.

Each basic block is value-numbered: every computed expression gets a value
number; expressions whose value is already held in a register are replaced
by that register, constant values are substituted directly, and copies
propagate.  Memory reads participate with an epoch that advances at every
store or call (conservative aliasing), and a store forwards its value to
subsequent loads of the same address.

Replication makes this pass markedly more effective: copied sequences fall
through into their surroundings and are merged into long straight-line
blocks, so value numbering sees across what used to be a jump (the paper's
§3.3.2, "Elimination of Instructions" — e.g. Table 1's folding of the
initial assignment into the replicated loop header).
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from ..cfg.block import BasicBlock, Function
from ..rtl.arith import eval_binop, eval_unop
from ..rtl.expr import BinOp, Const, Expr, Local, Mem, Reg, Sym, UnOp
from ..rtl.insn import Assign, Call, Compare, IndirectJump, Insn
from ..targets.machine import Machine

__all__ = ["local_cse"]

_COMMUTATIVE = {"+", "*", "&", "|", "^"}


class _ValueTable:
    """Value numbers for one basic block."""

    def __init__(self) -> None:
        self._next = 0
        self._by_key: Dict[tuple, int] = {}
        self.reg_vn: Dict[Reg, int] = {}
        self.vn_const: Dict[int, int] = {}
        # vn -> register currently holding it (oldest wins, kept valid).
        self.vn_reg: Dict[int, Reg] = {}
        self.mem_epoch = 0

    def fresh(self) -> int:
        self._next += 1
        return self._next

    def of_key(self, key: tuple) -> int:
        vn = self._by_key.get(key)
        if vn is None:
            vn = self.fresh()
            self._by_key[key] = vn
        return vn

    def of_reg(self, reg: Reg) -> int:
        vn = self.reg_vn.get(reg)
        if vn is None:
            vn = self.of_key(("reg-initial", reg))
            self.reg_vn[reg] = vn
            if vn not in self.vn_reg:
                self.vn_reg[vn] = reg
        return vn

    def set_reg(self, reg: Reg, vn: int) -> None:
        # Invalidate any stale "vn held by reg" claims.
        old = self.reg_vn.get(reg)
        if old is not None and self.vn_reg.get(old) == reg:
            del self.vn_reg[old]
        self.reg_vn[reg] = vn
        self.vn_reg.setdefault(vn, reg)

    def holder(self, vn: int) -> Optional[Reg]:
        reg = self.vn_reg.get(vn)
        if reg is not None and self.reg_vn.get(reg) == vn:
            return reg
        return None


def _number(expr: Expr, table: _ValueTable) -> int:
    if isinstance(expr, Const):
        vn = table.of_key(("const", expr.value))
        table.vn_const.setdefault(vn, expr.value)
        return vn
    if isinstance(expr, Reg):
        return table.of_reg(expr)
    if isinstance(expr, (Sym, Local)):
        return table.of_key(("addr", expr))
    if isinstance(expr, Mem):
        addr_vn = _number(expr.addr, table)
        return table.of_key(("mem", addr_vn, expr.width, table.mem_epoch))
    if isinstance(expr, BinOp):
        left = _number(expr.left, table)
        right = _number(expr.right, table)
        if expr.op in _COMMUTATIVE and right < left:
            left, right = right, left
        vn = table.of_key(("bin", expr.op, left, right))
        lc = table.vn_const.get(left)
        rc = table.vn_const.get(right)
        if lc is not None and rc is not None and not (
            expr.op in ("/", "%") and rc == 0
        ):
            value = eval_binop(expr.op, lc, rc)
            table.vn_const.setdefault(vn, value)
        return vn
    if isinstance(expr, UnOp):
        operand = _number(expr.operand, table)
        vn = table.of_key(("un", expr.op, operand))
        oc = table.vn_const.get(operand)
        if oc is not None:
            table.vn_const.setdefault(vn, eval_unop(expr.op, oc))
        return vn
    raise TypeError(f"unknown expression {expr!r}")


def _rewrite(expr: Expr, table: _ValueTable) -> Expr:
    """Replace ``expr`` by a cheaper equivalent when one is known."""
    vn = _number(expr, table)
    const = table.vn_const.get(vn)
    if const is not None:
        return Const(const)
    if isinstance(expr, Reg):
        holder = table.holder(vn)
        return holder if holder is not None else expr
    holder = table.holder(vn)
    if holder is not None:
        return holder
    # Rewrite children for partial wins.
    if isinstance(expr, Mem):
        return Mem(_rewrite(expr.addr, table), expr.width)
    if isinstance(expr, BinOp):
        return BinOp(expr.op, _rewrite(expr.left, table), _rewrite(expr.right, table))
    if isinstance(expr, UnOp):
        return UnOp(expr.op, _rewrite(expr.operand, table))
    return expr


def _commit_if_legal(
    insn: Insn, rebuilt: Insn, target: Optional[Machine]
) -> Tuple[Insn, bool]:
    if target is None or target.legal(rebuilt):
        return rebuilt, True
    return insn, False


def local_cse(func: Function, target: Optional[Machine] = None) -> bool:
    """Run local value numbering over every block; True if changed."""
    changed = False
    for block in func.blocks:
        if _cse_block(block, target):
            changed = True
    return changed


def _cse_block(block: BasicBlock, target: Optional[Machine]) -> bool:
    table = _ValueTable()
    changed = False
    for index, insn in enumerate(block.insns):
        if isinstance(insn, Assign):
            new_src = _rewrite(insn.src, table)
            src_vn = _number(insn.src, table)
            if isinstance(insn.dst, Reg):
                if new_src != insn.src:
                    candidate = Assign(insn.dst, new_src)
                    candidate, ok = _commit_if_legal(insn, candidate, target)
                    if ok:
                        block.insns[index] = candidate
                        insn = candidate
                        changed = True
                table.set_reg(insn.dst, src_vn)
            else:
                new_addr = _rewrite(insn.dst.addr, table)
                rebuilt = Assign(Mem(new_addr, insn.dst.width), new_src)
                if new_src != insn.src or new_addr != insn.dst.addr:
                    rebuilt, ok = _commit_if_legal(insn, rebuilt, target)
                    if ok:
                        block.insns[index] = rebuilt
                        insn = rebuilt
                        changed = True
                addr_vn = _number(insn.dst.addr, table)
                width = insn.dst.width
                table.mem_epoch += 1
                # Store-to-load forwarding: the stored cell now holds src_vn.
                key = ("mem", addr_vn, width, table.mem_epoch)
                table._by_key[key] = src_vn
        elif isinstance(insn, Compare):
            new_left = _rewrite(insn.left, table)
            new_right = _rewrite(insn.right, table)
            if new_left != insn.left or new_right != insn.right:
                candidate = Compare(new_left, new_right)
                candidate, ok = _commit_if_legal(insn, candidate, target)
                if ok:
                    block.insns[index] = candidate
                    changed = True
        elif isinstance(insn, Call):
            table.mem_epoch += 1
            table.set_reg(Reg("rv", 0), table.fresh())
        elif isinstance(insn, IndirectJump):
            new_addr = _rewrite(insn.addr, table)
            if new_addr != insn.addr:
                insn.addr = new_addr
                changed = True
    return changed
