"""Basic-block reordering to minimize unconditional jumps (Figure 3).

Blocks glued together by fall-through edges form *runs* that cannot be
separated.  Runs are re-laid-out greedily: after placing a run whose final
block ends in an unconditional jump, the run starting at the jump's target
is placed next when still unplaced — the jump then dies as a redundant
jump-to-next (removed by :func:`repro.opt.dead_code.remove_redundant_jumps`).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..cfg.block import BasicBlock, Function
from ..cfg.graph import compute_flow
from ..rtl.insn import Jump

__all__ = ["reorder_blocks"]


def _runs(func: Function) -> List[List[BasicBlock]]:
    """Split the layout into maximal fall-through runs."""
    runs: List[List[BasicBlock]] = []
    current: List[BasicBlock] = []
    for block in func.blocks:
        current.append(block)
        if not block.falls_through():
            runs.append(current)
            current = []
    if current:
        runs.append(current)
    return runs


def reorder_blocks(func: Function) -> bool:
    """Reorder runs to turn jumps into fall-throughs; True if changed."""
    runs = _runs(func)
    if len(runs) <= 1:
        return False
    by_head: Dict[str, int] = {run[0].label: i for i, run in enumerate(runs)}
    placed = [False] * len(runs)
    order: List[int] = []

    cursor: Optional[int] = 0  # the entry run must stay first
    while True:
        if cursor is None:
            cursor = next((i for i, done in enumerate(placed) if not done), None)
            if cursor is None:
                break
        order.append(cursor)
        placed[cursor] = True
        tail = runs[cursor][-1]
        term = tail.terminator
        cursor = None
        if isinstance(term, Jump):
            candidate = by_head.get(term.target)
            if candidate is not None and not placed[candidate]:
                cursor = candidate

    new_layout = [block for i in order for block in runs[i]]
    if new_layout == func.blocks:
        return False
    func.blocks = new_layout
    compute_flow(func)
    return True
