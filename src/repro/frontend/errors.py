"""Front-end diagnostics."""

from __future__ import annotations

__all__ = ["CompileError"]


class CompileError(Exception):
    """A mini-C compilation error with source position."""

    def __init__(self, message: str, line: int = 0, column: int = 0) -> None:
        self.message = message
        self.line = line
        self.column = column
        if line:
            super().__init__(f"line {line}:{column}: {message}")
        else:
            super().__init__(message)
