"""AST nodes for the mini-C dialect.

Plain dataclasses; positions (line numbers) ride along for diagnostics.
Expression nodes are annotated with their :class:`~repro.frontend.types.Type`
by the code generator as it walks the tree.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from .types import Type

__all__ = [
    # expressions
    "Expr",
    "IntLit",
    "StrLit",
    "Ident",
    "Unary",
    "Binary",
    "AssignExpr",
    "Ternary",
    "CallExpr",
    "Index",
    "Deref",
    "AddrOf",
    "IncDec",
    # statements
    "Stmt",
    "ExprStmt",
    "Block",
    "If",
    "While",
    "DoWhile",
    "For",
    "Return",
    "Break",
    "Continue",
    "Goto",
    "Label",
    "Switch",
    "Case",
    "VarDecl",
    # top level
    "Param",
    "FuncDef",
    "GlobalDecl",
    "TranslationUnit",
]


@dataclass
class Expr:
    """Base class of expression nodes."""

    line: int = 0


@dataclass
class IntLit(Expr):
    """An integer (or character) literal."""

    value: int = 0


@dataclass
class StrLit(Expr):
    """A string literal."""

    value: str = ""


@dataclass
class Ident(Expr):
    """A variable or function name."""

    name: str = ""


@dataclass
class Unary(Expr):
    """A unary operator application: ``- ! ~``."""

    op: str = ""
    operand: Optional[Expr] = None


@dataclass
class Binary(Expr):
    """A binary operator application (including ``&&``/``||``)."""

    op: str = ""
    left: Optional[Expr] = None
    right: Optional[Expr] = None


@dataclass
class AssignExpr(Expr):
    """Assignment or compound assignment (``=``, ``+=``, ...)."""

    op: str = "="  # "=", "+=", "-=", ...
    target: Optional[Expr] = None
    value: Optional[Expr] = None


@dataclass
class Ternary(Expr):
    """The conditional expression ``cond ? then : otherwise``."""

    cond: Optional[Expr] = None
    then: Optional[Expr] = None
    otherwise: Optional[Expr] = None


@dataclass
class CallExpr(Expr):
    """A function call."""

    func: str = ""
    args: List[Expr] = field(default_factory=list)


@dataclass
class Index(Expr):
    """Array/pointer subscription ``base[index]``."""

    base: Optional[Expr] = None
    index: Optional[Expr] = None


@dataclass
class Deref(Expr):
    """Pointer dereference ``*operand``."""

    operand: Optional[Expr] = None


@dataclass
class AddrOf(Expr):
    """Address-of ``&operand``."""

    operand: Optional[Expr] = None


@dataclass
class IncDec(Expr):
    """``++``/``--``, prefix or postfix."""

    op: str = "++"
    target: Optional[Expr] = None
    prefix: bool = True


# --- statements ---------------------------------------------------------------


@dataclass
class Stmt:
    """Base class of statement nodes."""

    line: int = 0


@dataclass
class ExprStmt(Stmt):
    """An expression statement (``expr;``), or ``;`` when empty."""

    expr: Optional[Expr] = None  # None models the empty statement ";"


@dataclass
class Block(Stmt):
    """A ``{ ... }`` compound statement."""

    body: List[Stmt] = field(default_factory=list)
    # False for synthetic groupings (e.g. "int i, j;") whose declarations
    # belong to the *enclosing* scope.
    scoped: bool = True


@dataclass
class If(Stmt):
    """``if``/``else``."""

    cond: Optional[Expr] = None
    then: Optional[Stmt] = None
    otherwise: Optional[Stmt] = None


@dataclass
class While(Stmt):
    """A ``while`` loop."""

    cond: Optional[Expr] = None
    body: Optional[Stmt] = None


@dataclass
class DoWhile(Stmt):
    """A ``do ... while`` loop."""

    body: Optional[Stmt] = None
    cond: Optional[Expr] = None


@dataclass
class For(Stmt):
    """A ``for`` loop."""

    init: Optional[Stmt] = None  # ExprStmt or VarDecl
    cond: Optional[Expr] = None
    step: Optional[Expr] = None
    body: Optional[Stmt] = None


@dataclass
class Return(Stmt):
    """A ``return`` statement."""

    value: Optional[Expr] = None


@dataclass
class Break(Stmt):
    """``break``."""

    pass


@dataclass
class Continue(Stmt):
    """``continue``."""

    pass


@dataclass
class Goto(Stmt):
    """``goto label;``."""

    label: str = ""


@dataclass
class Label(Stmt):
    """A statement label (``name: stmt``)."""

    name: str = ""
    stmt: Optional[Stmt] = None


@dataclass
class Case(Stmt):
    """One ``case``/``default`` arm of a switch."""

    value: Optional[int] = None  # None is "default"
    body: List[Stmt] = field(default_factory=list)


@dataclass
class Switch(Stmt):
    """A ``switch`` statement."""

    scrutinee: Optional[Expr] = None
    cases: List[Case] = field(default_factory=list)


@dataclass
class VarDecl(Stmt):
    """A local variable declaration, possibly initialized."""

    name: str = ""
    var_type: Optional[Type] = None
    init: Optional[Expr] = None
    init_list: Optional[List[Expr]] = None  # array initializers
    init_string: Optional[str] = None  # char buf[] = "text";


# --- top level ------------------------------------------------------------------


@dataclass
class Param:
    """A function parameter."""

    name: str
    param_type: Type


@dataclass
class FuncDef:
    """A function definition."""

    name: str
    return_type: Type
    params: List[Param]
    body: Block
    line: int = 0


@dataclass
class GlobalDecl:
    """A file-scope variable declaration."""

    name: str
    var_type: Type
    init: Optional[Expr] = None
    init_list: Optional[List[Expr]] = None
    init_string: Optional[str] = None  # char g[] = "text";
    line: int = 0


@dataclass
class TranslationUnit:
    """A whole parsed source file."""

    globals: List[GlobalDecl] = field(default_factory=list)
    functions: List[FuncDef] = field(default_factory=list)
