"""RTL code generation from the mini-C AST.

The generated code deliberately follows the *naive* layouts the paper
attributes to the VPCC front-end, because those are exactly the shapes the
back-end optimizations (and code replication in particular) are designed
to clean up:

* ``while`` loops place the test at the top and an **unconditional jump at
  the end of the loop** (§3.1);
* ``for`` loops emit an **unconditional jump preceding the loop** to the
  termination test placed at the end (§3.1);
* ``if``/``else`` emits an **unconditional jump over the else-part**
  (§3.2);
* every ``return`` assigns the return-value register and **jumps to a
  shared epilogue** — the join that Table 2 shows replication splitting
  into separate returns.

Values are computed naively into fresh virtual registers; the optimizer
(instruction selection, CSE, dead-variable elimination, allocation) is
responsible for making the code good, as in VPO.
"""

from __future__ import annotations

import struct
from typing import Dict, List, Optional, Tuple

from ..cfg.block import Function, GlobalData, Program
from ..cfg.graph import build_function
from ..rtl.expr import BinOp, Const, Expr, Local, Mem, Reg, Sym, UnOp
from ..rtl.insn import (
    Assign,
    Call,
    Compare,
    CondBranch,
    IndirectJump,
    Insn,
    Jump,
    Return,
)
from . import ast_nodes as ast
from .errors import CompileError
from .parser import parse
from .types import CHAR, INT, VOID, Type, ptr

__all__ = ["compile_c", "BUILTINS"]

# Functions provided by the runtime (the interpreter's "library").  The
# paper could not measure library routines either ("Library routines could
# not be measured since the source code was not available"); calls to these
# are executed natively and not counted.
BUILTINS = {
    "getchar": INT,
    "putchar": INT,
    "puts": INT,
    "printf": INT,
    "malloc": ptr(CHAR),
    "strlen": INT,
    "strcmp": INT,
    "strcpy": ptr(CHAR),
    "atoi": INT,
    "abs": INT,
    "exit": VOID,
    "memset": ptr(CHAR),
}

_COMPARISONS = {"<", "<=", ">", ">=", "==", "!="}
_NEGATED = {"<": ">=", ">=": "<", ">": "<=", "<=": ">", "==": "!=", "!=": "=="}


class _Var:
    """A resolved variable: where it lives and what type it has."""

    def __init__(self, kind: str, name: str, var_type: Type) -> None:
        self.kind = kind  # "local" or "global"
        self.name = name  # frame-slot or symbol name
        self.var_type = var_type

    def address(self) -> Expr:
        if self.kind == "local":
            return Local(self.name)
        return Sym(self.name)


class _FunctionCodegen:
    def __init__(self, unit_env: "_UnitEnv", definition: ast.FuncDef) -> None:
        self.env = unit_env
        self.definition = definition
        self.func = Function(definition.name, [p.name for p in definition.params])
        self.pairs: List[Tuple[Optional[str], Insn]] = []
        self.pending_labels: List[str] = []
        self.label_alias: Dict[str, str] = {}
        self.scopes: List[Dict[str, _Var]] = [{}]
        self.break_stack: List[str] = []
        self.continue_stack: List[str] = []
        self.user_labels: Dict[str, str] = {}
        self._vreg = 0
        self._label = 0
        self._slot_seq = 0
        self.epilogue = self.new_label()

    # --- small helpers ---------------------------------------------------------

    def new_vreg(self) -> Reg:
        self._vreg += 1
        return Reg("v", self._vreg)

    def new_label(self) -> str:
        self._label += 1
        return f"L{self.func.name}_{self._label}"

    def emit(self, insn: Insn) -> None:
        label = None
        if self.pending_labels:
            label = self.pending_labels[0]
            for extra in self.pending_labels[1:]:
                self.label_alias[extra] = label
            self.pending_labels = []
        self.pairs.append((label, insn))

    def place_label(self, label: str) -> None:
        # Aliases resolve later; two labels at the same point merge.
        self.pending_labels.append(label)

    def error(self, message: str, node) -> CompileError:
        return CompileError(message, getattr(node, "line", 0))

    # --- variables ---------------------------------------------------------------

    def declare_local(self, name: str, var_type: Type, node) -> _Var:
        if name in self.scopes[-1]:
            raise self.error(f"duplicate declaration of {name!r}", node)
        self._slot_seq += 1
        slot = name if name not in self.func.frame else f"{name}_{self._slot_seq}"
        size = var_type.size if var_type.kind == "array" else 4
        self.func.add_local(slot, size)
        var = _Var("local", slot, var_type)
        self.scopes[-1][name] = var
        return var

    def lookup(self, name: str, node) -> _Var:
        for scope in reversed(self.scopes):
            if name in scope:
                return scope[name]
        glob = self.env.globals.get(name)
        if glob is not None:
            return glob
        raise self.error(f"undeclared identifier {name!r}", node)

    # --- function body ---------------------------------------------------------------

    def generate(self) -> Function:
        # Parameters arrive in arg registers and are stored into frame
        # slots (promotion turns them back into registers when possible).
        for index, param in enumerate(self.definition.params):
            var = self.declare_local(param.name, param.param_type, self.definition)
            self.emit(Assign(Mem(Local(var.name), "L"), Reg("arg", index)))
        self.gen_block(self.definition.body)
        # Fall-off-the-end reaches the shared epilogue.
        self.place_label(self.epilogue)
        self.emit(Return())
        self._resolve_aliases()
        func = build_function(
            self.func.name, self.pairs, [p.name for p in self.definition.params]
        )
        func.frame = self.func.frame
        func.frame_size = self.func.frame_size
        return func

    def _resolve_aliases(self) -> None:
        if not self.label_alias:
            return

        def resolve(label: str) -> str:
            seen = set()
            while label in self.label_alias and label not in seen:
                seen.add(label)
                label = self.label_alias[label]
            return label

        for _, insn in self.pairs:
            for target in insn.branch_targets():
                final = resolve(target)
                if final != target:
                    insn.retarget(target, final)

    # --- statements ---------------------------------------------------------------

    def gen_block(self, block: ast.Block) -> None:
        if block.scoped:
            self.scopes.append({})
        for stmt in block.body:
            self.gen_statement(stmt)
        if block.scoped:
            self.scopes.pop()

    def gen_statement(self, stmt: ast.Stmt) -> None:
        if isinstance(stmt, ast.Block):
            self.gen_block(stmt)
        elif isinstance(stmt, ast.ExprStmt):
            if stmt.expr is not None:
                self.rvalue(stmt.expr)
        elif isinstance(stmt, ast.VarDecl):
            self.gen_var_decl(stmt)
        elif isinstance(stmt, ast.If):
            self.gen_if(stmt)
        elif isinstance(stmt, ast.While):
            self.gen_while(stmt)
        elif isinstance(stmt, ast.DoWhile):
            self.gen_do_while(stmt)
        elif isinstance(stmt, ast.For):
            self.gen_for(stmt)
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                value, _ = self.rvalue(stmt.value)
                self.emit(Assign(Reg("rv", 0), value))
            self.emit(Jump(self.epilogue))
        elif isinstance(stmt, ast.Break):
            if not self.break_stack:
                raise self.error("break outside a loop or switch", stmt)
            self.emit(Jump(self.break_stack[-1]))
        elif isinstance(stmt, ast.Continue):
            if not self.continue_stack:
                raise self.error("continue outside a loop", stmt)
            self.emit(Jump(self.continue_stack[-1]))
        elif isinstance(stmt, ast.Goto):
            self.emit(Jump(self._user_label(stmt.label)))
        elif isinstance(stmt, ast.Label):
            self.place_label(self._user_label(stmt.name))
            if stmt.stmt is not None:
                self.gen_statement(stmt.stmt)
        elif isinstance(stmt, ast.Switch):
            self.gen_switch(stmt)
        else:
            raise self.error(f"cannot generate statement {type(stmt).__name__}", stmt)

    def _user_label(self, name: str) -> str:
        if name not in self.user_labels:
            self.user_labels[name] = self.new_label()
        return self.user_labels[name]

    def gen_var_decl(self, stmt: ast.VarDecl) -> None:
        assert stmt.var_type is not None
        var_type = stmt.var_type
        if var_type.kind == "array" and var_type.length < 0:
            # Size from initializer.
            if stmt.init_list is not None:
                var_type = Type("array", var_type.base, len(stmt.init_list))
            elif stmt.init_string is not None:
                var_type = Type("array", var_type.base, len(stmt.init_string) + 1)
            else:
                raise self.error(f"array {stmt.name!r} has no size", stmt)
        var = self.declare_local(stmt.name, var_type, stmt)
        if stmt.init is not None:
            value, value_type = self.rvalue(stmt.init)
            self.store_scalar(var, value, value_type, stmt)
        elif stmt.init_list is not None:
            elem = var_type.element()
            for index, item in enumerate(stmt.init_list):
                value, _ = self.rvalue(item)
                addr = BinOp("+", Local(var.name), Const(index * elem.size))
                self.emit(Assign(Mem(addr, elem.width), value))
        elif stmt.init_string is not None:
            data = stmt.init_string + "\0"
            for index, ch in enumerate(data):
                addr = BinOp("+", Local(var.name), Const(index))
                self.emit(Assign(Mem(addr, "B"), Const(ord(ch))))

    def store_scalar(self, var: _Var, value: Expr, value_type: Type, node) -> None:
        if not var.var_type.is_scalar():
            raise self.error(f"cannot assign to {var.var_type}", node)
        width = "L" if var.kind == "local" else var.var_type.width
        if var.var_type.kind == "char":
            value = self.force_reg(BinOp("&", self.force_reg(value), Const(0xFF)))
        self.emit(Assign(Mem(var.address(), width), value))

    # --- control flow ---------------------------------------------------------------

    def gen_if(self, stmt: ast.If) -> None:
        end = self.new_label()
        if stmt.otherwise is None:
            self.branch_if_false(stmt.cond, end)
            self.gen_statement(stmt.then)
        else:
            otherwise = self.new_label()
            self.branch_if_false(stmt.cond, otherwise)
            self.gen_statement(stmt.then)
            self.emit(Jump(end))  # the §3.2 jump over the else-part
            self.place_label(otherwise)
            self.gen_statement(stmt.otherwise)
        self.place_label(end)

    def gen_while(self, stmt: ast.While) -> None:
        test = self.new_label()
        exit_label = self.new_label()
        self.place_label(test)
        self.branch_if_false(stmt.cond, exit_label)
        self.break_stack.append(exit_label)
        self.continue_stack.append(test)
        self.gen_statement(stmt.body)
        self.break_stack.pop()
        self.continue_stack.pop()
        self.emit(Jump(test))  # the §3.1 jump at the end of the loop
        self.place_label(exit_label)

    def gen_do_while(self, stmt: ast.DoWhile) -> None:
        body = self.new_label()
        cont = self.new_label()
        exit_label = self.new_label()
        self.place_label(body)
        self.break_stack.append(exit_label)
        self.continue_stack.append(cont)
        self.gen_statement(stmt.body)
        self.break_stack.pop()
        self.continue_stack.pop()
        self.place_label(cont)
        self.branch_if_true(stmt.cond, body)
        self.place_label(exit_label)

    def gen_for(self, stmt: ast.For) -> None:
        body = self.new_label()
        cont = self.new_label()
        test = self.new_label()
        exit_label = self.new_label()
        self.scopes.append({})
        if stmt.init is not None:
            self.gen_statement(stmt.init)
        self.emit(Jump(test))  # the §3.1 jump preceding the loop
        self.place_label(body)
        self.break_stack.append(exit_label)
        self.continue_stack.append(cont)
        if stmt.body is not None:
            self.gen_statement(stmt.body)
        self.break_stack.pop()
        self.continue_stack.pop()
        self.place_label(cont)
        if stmt.step is not None:
            self.rvalue(stmt.step)
        self.place_label(test)
        if stmt.cond is not None:
            self.branch_if_true(stmt.cond, body)
        else:
            self.emit(Jump(body))
        self.place_label(exit_label)
        self.scopes.pop()

    def gen_switch(self, stmt: ast.Switch) -> None:
        scrutinee, _ = self.rvalue(stmt.scrutinee)
        scrutinee = self.force_reg(scrutinee)
        end = self.new_label()
        default_label = end
        labelled: List[Tuple[int, str]] = []
        case_labels: List[str] = []
        for case in stmt.cases:
            label = self.new_label()
            case_labels.append(label)
            if case.value is None:
                default_label = label
            else:
                labelled.append((case.value, label))

        values = [v for v, _ in labelled]
        dense = (
            len(values) >= 4
            and len(set(values)) == len(values)
            and max(values) - min(values) + 1 <= 3 * len(values)
        )
        if dense:
            low, high = min(values), max(values)
            index = self.new_vreg()
            self.emit(Assign(index, BinOp("-", scrutinee, Const(low))))
            self.emit(Compare(index, Const(0)))
            self.emit(CondBranch("<", default_label))
            self.emit(Compare(index, Const(high - low)))
            self.emit(CondBranch(">", default_label))
            table = {v - low: lab for v, lab in labelled}
            targets = [table.get(i, default_label) for i in range(high - low + 1)]
            self.emit(IndirectJump(index, targets))
        else:
            for value, label in labelled:
                self.emit(Compare(scrutinee, Const(value)))
                self.emit(CondBranch("==", label))
            self.emit(Jump(default_label))

        self.break_stack.append(end)
        for case, label in zip(stmt.cases, case_labels):
            self.place_label(label)
            for inner in case.body:
                self.gen_statement(inner)
        self.break_stack.pop()
        self.place_label(end)

    # --- conditions -------------------------------------------------------------------

    def branch_if_true(self, cond: ast.Expr, target: str) -> None:
        self._branch(cond, target, True)

    def branch_if_false(self, cond: ast.Expr, target: str) -> None:
        self._branch(cond, target, False)

    def _branch(self, cond: ast.Expr, target: str, when_true: bool) -> None:
        if isinstance(cond, ast.Unary) and cond.op == "!":
            self._branch(cond.operand, target, not when_true)
            return
        if isinstance(cond, ast.Binary) and cond.op in ("&&", "||"):
            is_and = cond.op == "&&"
            if is_and == when_true:
                # Branching when both (resp. either) — needs a short-circuit
                # label for the first operand.
                skip = self.new_label()
                self._branch(cond.left, skip, not when_true)
                self._branch(cond.right, target, when_true)
                self.place_label(skip)
            else:
                self._branch(cond.left, target, when_true)
                self._branch(cond.right, target, when_true)
            return
        if isinstance(cond, ast.Binary) and cond.op in _COMPARISONS:
            left, left_type = self.rvalue(cond.left)
            right, _ = self.rvalue(cond.right)
            self.emit(Compare(left, right))
            rel = cond.op if when_true else _NEGATED[cond.op]
            self.emit(CondBranch(rel, target))
            return
        value, _ = self.rvalue(cond)
        self.emit(Compare(value, Const(0)))
        self.emit(CondBranch("!=" if when_true else "==", target))

    # --- expressions --------------------------------------------------------------------

    def force_reg(self, expr: Expr) -> Expr:
        """Materialize non-leaf expressions into a fresh virtual register."""
        if isinstance(expr, (Reg, Const)):
            return expr
        reg = self.new_vreg()
        self.emit(Assign(reg, expr))
        return reg

    def rvalue(self, expr: ast.Expr) -> Tuple[Expr, Type]:
        """Generate code computing ``expr``; return (leaf RTL expr, type)."""
        if isinstance(expr, ast.IntLit):
            return Const(expr.value), INT
        if isinstance(expr, ast.StrLit):
            name = self.env.program.intern_string(expr.value)
            return self.force_reg(Sym(name)), ptr(CHAR)
        if isinstance(expr, ast.Ident):
            var = self.lookup(expr.name, expr)
            if var.var_type.kind == "array":
                return self.force_reg(var.address()), var.var_type.decay()
            width = "L" if var.kind == "local" else var.var_type.width
            return self.force_reg(Mem(var.address(), width)), var.var_type
        if isinstance(expr, ast.Unary):
            return self.gen_unary(expr)
        if isinstance(expr, ast.Binary):
            return self.gen_binary(expr)
        if isinstance(expr, ast.AssignExpr):
            return self.gen_assign(expr)
        if isinstance(expr, ast.Ternary):
            return self.gen_ternary(expr)
        if isinstance(expr, ast.CallExpr):
            return self.gen_call(expr)
        if isinstance(expr, (ast.Index, ast.Deref)):
            addr, value_type = self.lvalue(expr)
            if value_type.kind == "array":
                return self.force_reg(addr), value_type.decay()
            return self.force_reg(Mem(addr, value_type.width)), value_type
        if isinstance(expr, ast.AddrOf):
            addr, value_type = self.lvalue(expr.operand)
            return self.force_reg(addr), ptr(value_type)
        if isinstance(expr, ast.IncDec):
            return self.gen_incdec(expr)
        raise self.error(f"cannot evaluate {type(expr).__name__}", expr)

    def gen_unary(self, expr: ast.Unary) -> Tuple[Expr, Type]:
        if expr.op == "!":
            # !x is (x == 0) as a value.
            result = self.new_vreg()
            done = self.new_label()
            self.emit(Assign(result, Const(1)))
            value, _ = self.rvalue(expr.operand)
            self.emit(Compare(value, Const(0)))
            self.emit(CondBranch("==", done))
            self.emit(Assign(result, Const(0)))
            self.place_label(done)
            return result, INT
        value, value_type = self.rvalue(expr.operand)
        return self.force_reg(UnOp(expr.op, value)), value_type

    def gen_binary(self, expr: ast.Binary) -> Tuple[Expr, Type]:
        op = expr.op
        if op == ",":
            self.rvalue(expr.left)
            return self.rvalue(expr.right)
        if op in ("&&", "||") or op in _COMPARISONS:
            # Comparison / logical connective as a value: 0 or 1.
            result = self.new_vreg()
            done = self.new_label()
            self.emit(Assign(result, Const(1)))
            self._branch(expr, done, True)
            self.emit(Assign(result, Const(0)))
            self.place_label(done)
            return result, INT
        left, left_type = self.rvalue(expr.left)
        right, right_type = self.rvalue(expr.right)
        # Pointer arithmetic scales by the element size.
        if op == "+" and left_type.is_pointerish() and not right_type.is_pointerish():
            right = self._scaled(right, left_type.decay().element().size)
            return self.force_reg(BinOp("+", left, right)), left_type.decay()
        if op == "+" and right_type.is_pointerish():
            left = self._scaled(left, right_type.decay().element().size)
            return self.force_reg(BinOp("+", left, right)), right_type.decay()
        if op == "-" and left_type.is_pointerish() and right_type.is_pointerish():
            diff = self.force_reg(BinOp("-", left, right))
            size = left_type.decay().element().size
            if size != 1:
                diff = self.force_reg(BinOp("/", diff, Const(size)))
            return diff, INT
        if op == "-" and left_type.is_pointerish():
            right = self._scaled(right, left_type.decay().element().size)
            return self.force_reg(BinOp("-", left, right)), left_type.decay()
        result_type = INT
        return self.force_reg(BinOp(op, left, right)), result_type

    def _scaled(self, value: Expr, size: int) -> Expr:
        if size == 1:
            return value
        if isinstance(value, Const):
            return Const(value.value * size)
        return self.force_reg(BinOp("*", value, Const(size)))

    def gen_ternary(self, expr: ast.Ternary) -> Tuple[Expr, Type]:
        result = self.new_vreg()
        otherwise = self.new_label()
        done = self.new_label()
        self.branch_if_false(expr.cond, otherwise)
        then_value, then_type = self.rvalue(expr.then)
        self.emit(Assign(result, then_value))
        self.emit(Jump(done))  # §3.2: conditional expressions jump too
        self.place_label(otherwise)
        else_value, _ = self.rvalue(expr.otherwise)
        self.emit(Assign(result, else_value))
        self.place_label(done)
        return result, then_type

    def gen_call(self, expr: ast.CallExpr) -> Tuple[Expr, Type]:
        name = expr.func
        user = self.env.function_types.get(name)
        if user is None and name not in BUILTINS:
            raise self.error(f"call to undeclared function {name!r}", expr)
        if user is not None and len(expr.args) != len(user[1]):
            raise self.error(
                f"{name}() takes {len(user[1])} arguments, got {len(expr.args)}",
                expr,
            )
        # Evaluate every argument *before* loading the arg registers, so a
        # nested call cannot clobber them.
        values = [self.force_reg(self.rvalue(arg)[0]) for arg in expr.args]
        for index, value in enumerate(values):
            self.emit(Assign(Reg("arg", index), value))
        self.emit(Call(name, len(values)))
        return_type = user[0] if user is not None else BUILTINS[name]
        if return_type.kind == "void":
            return Const(0), INT
        result = self.new_vreg()
        self.emit(Assign(result, Reg("rv", 0)))
        return result, return_type

    def gen_assign(self, expr: ast.AssignExpr) -> Tuple[Expr, Type]:
        addr, target_type = self.lvalue(expr.target)
        if not target_type.is_scalar():
            raise self.error(f"cannot assign to a value of type {target_type}", expr)
        addr = self.force_reg(addr) if not isinstance(addr, (Local, Sym, Reg)) else addr
        if expr.op == "=":
            value, _ = self.rvalue(expr.value)
        else:
            op = expr.op[:-1]
            current = self.force_reg(Mem(addr, target_type.width))
            rhs, rhs_type = self.rvalue(expr.value)
            if (
                op in ("+", "-")
                and target_type.kind == "ptr"
            ):
                rhs = self._scaled(rhs, target_type.element().size)
            value = self.force_reg(BinOp(op, current, rhs))
        value = self.force_reg(value)
        if target_type.kind == "char":
            # Stores of width B truncate naturally; the mask matters only
            # for char-typed *locals* kept in 4-byte slots.
            if isinstance(addr, Local):
                value = self.force_reg(BinOp("&", value, Const(0xFF)))
                self.emit(Assign(Mem(addr, "L"), value))
                return value, target_type
        self.emit(Assign(Mem(addr, target_type.width), value))
        return value, target_type

    def gen_incdec(self, expr: ast.IncDec) -> Tuple[Expr, Type]:
        addr, target_type = self.lvalue(expr.target)
        addr = self.force_reg(addr) if not isinstance(addr, (Local, Sym, Reg)) else addr
        width = target_type.width
        is_local_char = target_type.kind == "char" and isinstance(addr, Local)
        if is_local_char:
            width = "L"
        step = 1
        if target_type.kind == "ptr":
            step = target_type.element().size
        old = self.force_reg(Mem(addr, width))
        op = "+" if expr.op == "++" else "-"
        new = self.force_reg(BinOp(op, old, Const(step)))
        if is_local_char or target_type.kind == "char":
            new = self.force_reg(BinOp("&", new, Const(0xFF)))
        self.emit(Assign(Mem(addr, width), new))
        return (new if expr.prefix else old), target_type

    # --- lvalues -----------------------------------------------------------------------

    def lvalue(self, expr: ast.Expr) -> Tuple[Expr, Type]:
        """Return (address expression, type-at-that-address)."""
        if isinstance(expr, ast.Ident):
            var = self.lookup(expr.name, expr)
            if var.var_type.kind == "char" and var.kind == "local":
                # char locals live in 4-byte slots; gen_assign handles the
                # masking, loads use width L via the type's local rules.
                pass
            return var.address(), var.var_type
        if isinstance(expr, ast.Deref):
            value, value_type = self.rvalue(expr.operand)
            if not value_type.is_pointerish():
                raise self.error("cannot dereference a non-pointer", expr)
            return value, value_type.decay().element()
        if isinstance(expr, ast.Index):
            base, base_type = self.rvalue(expr.base)
            if not base_type.is_pointerish():
                raise self.error("cannot index a non-pointer", expr)
            elem = base_type.decay().element()
            index, _ = self.rvalue(expr.index)
            offset = self._scaled(index, elem.size)
            return BinOp("+", base, offset), elem
        raise self.error(f"{type(expr).__name__} is not an lvalue", expr)


class _UnitEnv:
    def __init__(self, program: Program) -> None:
        self.program = program
        self.globals: Dict[str, _Var] = {}
        self.function_types: Dict[str, Tuple[Type, List[Type]]] = {}


def _const_eval(expr: ast.Expr, env: _UnitEnv) -> Tuple[int, Optional[str]]:
    """Evaluate a global initializer: (value, relocation symbol or None)."""
    if isinstance(expr, ast.IntLit):
        return expr.value, None
    if isinstance(expr, ast.StrLit):
        return 0, env.program.intern_string(expr.value)
    if isinstance(expr, ast.Unary) and expr.op == "-":
        value, reloc = _const_eval(expr.operand, env)
        if reloc is not None:
            raise CompileError("cannot negate an address in an initializer")
        return -value, None
    if isinstance(expr, ast.Binary):
        left, lr = _const_eval(expr.left, env)
        right, rr = _const_eval(expr.right, env)
        if lr is not None or rr is not None:
            raise CompileError("address arithmetic in initializers unsupported")
        from ..rtl.arith import eval_binop

        return eval_binop(expr.op, left, right), None
    raise CompileError("global initializers must be constant expressions")


def _encode_global(decl: ast.GlobalDecl, env: _UnitEnv) -> GlobalData:
    var_type = decl.var_type
    if var_type.kind == "array" and var_type.length < 0:
        if decl.init_list is not None:
            var_type = Type("array", var_type.base, len(decl.init_list))
        elif decl.init_string is not None:
            var_type = Type("array", var_type.base, len(decl.init_string) + 1)
        else:
            raise CompileError(f"global array {decl.name!r} has no size", decl.line)
        decl.var_type = var_type

    size = var_type.size
    data = bytearray(size)
    relocs: List[Tuple[int, str]] = []
    if decl.init is not None:
        value, reloc = _const_eval(decl.init, env)
        if reloc is not None:
            relocs.append((0, reloc))
        else:
            if var_type.width == "B":
                data[0] = value & 0xFF
            else:
                data[0:4] = struct.pack("<i", value)
    elif decl.init_list is not None:
        elem = var_type.element()
        if len(decl.init_list) > var_type.length:
            raise CompileError(f"too many initializers for {decl.name!r}", decl.line)
        for index, item in enumerate(decl.init_list):
            value, reloc = _const_eval(item, env)
            offset = index * elem.size
            if reloc is not None:
                relocs.append((offset, reloc))
            elif elem.size == 1:
                data[offset] = value & 0xFF
            else:
                data[offset : offset + 4] = struct.pack("<i", value)
    elif decl.init_string is not None:
        payload = decl.init_string.encode("latin-1") + b"\x00"
        if len(payload) > size:
            raise CompileError(f"string too long for {decl.name!r}", decl.line)
        data[: len(payload)] = payload
    return GlobalData(decl.name, size, bytes(data), var_type.width, relocs)


def compile_c(source: str) -> Program:
    """Compile mini-C source text into an (unoptimized) RTL program."""
    from ..obs import active as _active_observer
    from ..obs.tracer import NULL_SPAN

    obs = _active_observer()
    tracer = obs.tracer if obs is not None and obs.tracer.enabled else None

    with (
        tracer.span("frontend.parse", bytes=len(source))
        if tracer is not None
        else NULL_SPAN
    ):
        unit = parse(source)
    with (
        tracer.span("frontend.codegen") if tracer is not None else NULL_SPAN
    ) as codegen_span:
        program = Program()
        env = _UnitEnv(program)

        for decl in unit.globals:
            data = _encode_global(decl, env)
            program.add_global(data)
            env.globals[decl.name] = _Var("global", decl.name, decl.var_type)

        for definition in unit.functions:
            env.function_types[definition.name] = (
                definition.return_type,
                [p.param_type for p in definition.params],
            )
        for definition in unit.functions:
            codegen = _FunctionCodegen(env, definition)
            program.add_function(codegen.generate())
        codegen_span.set(
            functions=len(program.functions), globals=len(program.globals)
        )
    return program
