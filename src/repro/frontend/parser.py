"""Recursive-descent parser for the mini-C dialect.

Grammar highlights:

* declarations: ``int x;``, ``char *p;``, ``int a[10];``, ``int m[8][8];``,
  with scalar initializers, array initializer lists and string initializers
  for ``char`` arrays;
* all C statements the benchmark suite uses: ``if``/``else``, ``while``,
  ``do``/``while``, ``for``, ``switch``/``case``/``default``, ``break``,
  ``continue``, ``goto``/labels, ``return``, blocks;
* full C expression precedence, including assignment and compound
  assignment, ``?:``, ``||``/``&&``, bit operations, comparisons, shifts,
  arithmetic, casts to scalar types, unary operators, ``++``/``--``,
  indexing and calls.
"""

from __future__ import annotations

from typing import List, Optional

from . import ast_nodes as ast
from .errors import CompileError
from .lexer import Token, tokenize
from .types import CHAR, INT, VOID, Type, array_of, ptr

__all__ = ["parse"]

# Binary operator precedence (C's), tightest last.
_BINARY_LEVELS = [
    ["||"],
    ["&&"],
    ["|"],
    ["^"],
    ["&"],
    ["==", "!="],
    ["<", "<=", ">", ">="],
    ["<<", ">>"],
    ["+", "-"],
    ["*", "/", "%"],
]

_ASSIGN_OPS = {"=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<=", ">>="}


class _Parser:
    def __init__(self, tokens: List[Token]) -> None:
        self.tokens = tokens
        self.pos = 0

    # --- token plumbing -------------------------------------------------------

    def peek(self, offset: int = 0) -> Token:
        return self.tokens[min(self.pos + offset, len(self.tokens) - 1)]

    def next(self) -> Token:
        token = self.peek()
        if token.kind != "eof":
            self.pos += 1
        return token

    def at(self, text: str) -> bool:
        token = self.peek()
        return token.text == text and token.kind in ("op", "keyword")

    def accept(self, text: str) -> bool:
        if self.at(text):
            self.next()
            return True
        return False

    def expect(self, text: str) -> Token:
        token = self.peek()
        if not self.at(text):
            raise CompileError(
                f"expected {text!r}, got {token.text!r}", token.line, token.column
            )
        return self.next()

    def error(self, message: str) -> CompileError:
        token = self.peek()
        return CompileError(message, token.line, token.column)

    # --- types ----------------------------------------------------------------

    def at_type(self) -> bool:
        return self.peek().kind == "keyword" and self.peek().text in (
            "int",
            "char",
            "void",
        )

    def parse_base_type(self) -> Type:
        token = self.next()
        if token.text == "int":
            base = INT
        elif token.text == "char":
            base = CHAR
        elif token.text == "void":
            base = VOID
        else:
            raise CompileError(f"expected a type, got {token.text!r}", token.line, token.column)
        return base

    def parse_declarator(self, base: Type) -> (str, Type):
        while self.accept("*"):
            base = ptr(base)
        token = self.peek()
        if token.kind != "ident":
            raise self.error("expected an identifier in declaration")
        name = self.next().text
        dims: List[int] = []
        while self.accept("["):
            if self.at("]"):
                dims.append(-1)  # size from initializer
            else:
                size_token = self.next()
                if size_token.kind != "number":
                    raise CompileError(
                        "array dimensions must be integer literals",
                        size_token.line,
                        size_token.column,
                    )
                dims.append(int(size_token.value))
            self.expect("]")
        for dim in reversed(dims):
            base = array_of(base, dim)
        return name, base

    # --- top level ---------------------------------------------------------------

    def parse_unit(self) -> ast.TranslationUnit:
        unit = ast.TranslationUnit()
        while self.peek().kind != "eof":
            base = self.parse_base_type()
            name, full = self.parse_declarator(base)
            if self.at("("):
                func = self.parse_function(name, full)
                if func is not None:
                    unit.functions.append(func)
            else:
                self.parse_global_tail(unit, name, full)
        return unit

    def parse_function(self, name: str, return_type: Type) -> ast.FuncDef:
        line = self.peek().line
        self.expect("(")
        params: List[ast.Param] = []
        if not self.at(")"):
            if self.at("void") and self.peek(1).text == ")":
                self.next()
            else:
                while True:
                    base = self.parse_base_type()
                    pname, ptype = self.parse_declarator(base)
                    # Array parameters decay to pointers.
                    params.append(ast.Param(pname, ptype.decay()))
                    if not self.accept(","):
                        break
        self.expect(")")
        if self.accept(";"):
            return None  # a forward declaration (mutual recursion)
        body = self.parse_block()
        return ast.FuncDef(name, return_type, params, body, line)

    def parse_global_tail(
        self, unit: ast.TranslationUnit, name: str, var_type: Type
    ) -> None:
        line = self.peek().line
        while True:
            decl = ast.GlobalDecl(name, var_type, line=line)
            if self.accept("="):
                self.parse_initializer(decl)
            unit.globals.append(decl)
            if not self.accept(","):
                break
            base = self._strip_derived(var_type)
            name, var_type = self.parse_declarator(base)
        self.expect(";")

    @staticmethod
    def _strip_derived(t: Type) -> Type:
        while t.base is not None:
            t = t.base
        return t

    def parse_initializer(self, decl) -> None:
        if self.at("{"):
            self.next()
            items: List[ast.Expr] = []
            while not self.at("}"):
                items.append(self.parse_conditional())
                if not self.accept(","):
                    break
            self.expect("}")
            decl.init_list = items
        elif self.peek().kind == "string" and decl.var_type.kind == "array":
            decl.init_string = self.next().value
        else:
            decl.init = self.parse_conditional()

    # --- statements ------------------------------------------------------------

    def parse_block(self) -> ast.Block:
        line = self.peek().line
        self.expect("{")
        body: List[ast.Stmt] = []
        while not self.at("}"):
            body.append(self.parse_statement())
        self.expect("}")
        return ast.Block(line, body)

    def parse_statement(self) -> ast.Stmt:
        token = self.peek()
        line = token.line
        if self.at("{"):
            return self.parse_block()
        if self.at_type():
            return self.parse_local_decl()
        if self.accept(";"):
            return ast.ExprStmt(line, None)
        if self.accept("if"):
            self.expect("(")
            cond = self.parse_expression()
            self.expect(")")
            then = self.parse_statement()
            otherwise = self.parse_statement() if self.accept("else") else None
            return ast.If(line, cond, then, otherwise)
        if self.accept("while"):
            self.expect("(")
            cond = self.parse_expression()
            self.expect(")")
            return ast.While(line, cond, self.parse_statement())
        if self.accept("do"):
            body = self.parse_statement()
            self.expect("while")
            self.expect("(")
            cond = self.parse_expression()
            self.expect(")")
            self.expect(";")
            return ast.DoWhile(line, body, cond)
        if self.accept("for"):
            self.expect("(")
            init: Optional[ast.Stmt] = None
            if not self.at(";"):
                if self.at_type():
                    init = self.parse_local_decl()
                else:
                    init = ast.ExprStmt(line, self.parse_expression())
                    self.expect(";")
            else:
                self.next()
            cond = None if self.at(";") else self.parse_expression()
            self.expect(";")
            step = None if self.at(")") else self.parse_expression()
            self.expect(")")
            return ast.For(line, init, cond, step, self.parse_statement())
        if self.accept("return"):
            value = None if self.at(";") else self.parse_expression()
            self.expect(";")
            return ast.Return(line, value)
        if self.accept("break"):
            self.expect(";")
            return ast.Break(line)
        if self.accept("continue"):
            self.expect(";")
            return ast.Continue(line)
        if self.accept("goto"):
            label = self.next()
            if label.kind != "ident":
                raise CompileError("goto needs a label", label.line, label.column)
            self.expect(";")
            return ast.Goto(line, label.text)
        if self.accept("switch"):
            return self.parse_switch(line)
        if (
            token.kind == "ident"
            and self.peek(1).text == ":"
            and self.peek(1).kind == "op"
        ):
            name = self.next().text
            self.next()  # ':'
            return ast.Label(line, name, self.parse_statement())
        expr = self.parse_expression()
        self.expect(";")
        return ast.ExprStmt(line, expr)

    def parse_local_decl(self) -> ast.Stmt:
        line = self.peek().line
        base = self.parse_base_type()
        decls: List[ast.Stmt] = []
        while True:
            name, var_type = self.parse_declarator(base)
            decl = ast.VarDecl(line, name, var_type)
            if self.accept("="):
                self.parse_initializer(decl)
            decls.append(decl)
            if not self.accept(","):
                break
        self.expect(";")
        if len(decls) == 1:
            return decls[0]
        return ast.Block(line, decls, scoped=False)

    def parse_switch(self, line: int) -> ast.Switch:
        self.expect("(")
        scrutinee = self.parse_expression()
        self.expect(")")
        self.expect("{")
        cases: List[ast.Case] = []
        current: Optional[ast.Case] = None
        while not self.at("}"):
            if self.accept("case"):
                token = self.next()
                if token.kind == "number":
                    value = int(token.value)
                elif token.kind == "char":
                    value = int(token.value)
                elif token.kind == "op" and token.text == "-":
                    negated = self.next()
                    value = -int(negated.value)
                else:
                    raise CompileError(
                        "case labels must be integer constants",
                        token.line,
                        token.column,
                    )
                self.expect(":")
                current = ast.Case(token.line, value)
                cases.append(current)
                continue
            if self.accept("default"):
                self.expect(":")
                current = ast.Case(line, None)
                cases.append(current)
                continue
            if current is None:
                raise self.error("statement before first case label")
            current.body.append(self.parse_statement())
        self.expect("}")
        return ast.Switch(line, scrutinee, cases)

    # --- expressions ------------------------------------------------------------

    def parse_expression(self) -> ast.Expr:
        expr = self.parse_assignment()
        while self.accept(","):
            right = self.parse_assignment()
            expr = ast.Binary(expr.line, ",", expr, right)
        return expr

    def parse_assignment(self) -> ast.Expr:
        left = self.parse_conditional()
        token = self.peek()
        if token.kind == "op" and token.text in _ASSIGN_OPS:
            self.next()
            value = self.parse_assignment()
            return ast.AssignExpr(token.line, token.text, left, value)
        return left

    def parse_conditional(self) -> ast.Expr:
        cond = self.parse_binary(0)
        if self.accept("?"):
            then = self.parse_expression()
            self.expect(":")
            otherwise = self.parse_conditional()
            return ast.Ternary(cond.line, cond, then, otherwise)
        return cond

    def parse_binary(self, level: int) -> ast.Expr:
        if level >= len(_BINARY_LEVELS):
            return self.parse_unary()
        left = self.parse_binary(level + 1)
        ops = _BINARY_LEVELS[level]
        while self.peek().kind == "op" and self.peek().text in ops:
            op = self.next().text
            right = self.parse_binary(level + 1)
            left = ast.Binary(left.line, op, left, right)
        return left

    def parse_unary(self) -> ast.Expr:
        token = self.peek()
        line = token.line
        if self.accept("-"):
            return ast.Unary(line, "-", self.parse_unary())
        if self.accept("+"):
            return self.parse_unary()
        if self.accept("!"):
            return ast.Unary(line, "!", self.parse_unary())
        if self.accept("~"):
            return ast.Unary(line, "~", self.parse_unary())
        if self.accept("*"):
            return ast.Deref(line, self.parse_unary())
        if self.accept("&"):
            return ast.AddrOf(line, self.parse_unary())
        if self.accept("++"):
            return ast.IncDec(line, "++", self.parse_unary(), True)
        if self.accept("--"):
            return ast.IncDec(line, "--", self.parse_unary(), True)
        if self.accept("sizeof"):
            self.expect("(")
            base = self.parse_base_type()
            while self.accept("*"):
                base = ptr(base)
            self.expect(")")
            return ast.IntLit(line, base.size)
        if (
            self.at("(")
            and self.peek(1).kind == "keyword"
            and self.peek(1).text in ("int", "char")
        ):
            # A cast: types are all 32-bit-ish at expression level, so a
            # cast only matters for chars, where we mask to 8 bits.
            self.next()
            base = self.parse_base_type()
            is_ptr = False
            while self.accept("*"):
                is_ptr = True
            self.expect(")")
            operand = self.parse_unary()
            if base.kind == "char" and not is_ptr:
                return ast.Binary(line, "&", operand, ast.IntLit(line, 0xFF))
            return operand
        return self.parse_postfix()

    def parse_postfix(self) -> ast.Expr:
        expr = self.parse_primary()
        while True:
            if self.accept("["):
                index = self.parse_expression()
                self.expect("]")
                expr = ast.Index(expr.line, expr, index)
            elif self.at("(") and isinstance(expr, ast.Ident):
                self.next()
                args: List[ast.Expr] = []
                if not self.at(")"):
                    while True:
                        args.append(self.parse_assignment())
                        if not self.accept(","):
                            break
                self.expect(")")
                expr = ast.CallExpr(expr.line, expr.name, args)
            elif self.accept("++"):
                expr = ast.IncDec(expr.line, "++", expr, False)
            elif self.accept("--"):
                expr = ast.IncDec(expr.line, "--", expr, False)
            else:
                return expr

    def parse_primary(self) -> ast.Expr:
        token = self.next()
        if token.kind == "number":
            return ast.IntLit(token.line, int(token.value))
        if token.kind == "char":
            return ast.IntLit(token.line, int(token.value))
        if token.kind == "string":
            return ast.StrLit(token.line, token.value)
        if token.kind == "ident":
            return ast.Ident(token.line, token.text)
        if token.text == "(":
            expr = self.parse_expression()
            self.expect(")")
            return expr
        raise CompileError(
            f"unexpected token {token.text!r} in expression", token.line, token.column
        )


def parse(source: str) -> ast.TranslationUnit:
    """Parse mini-C source text into a translation unit."""
    parser = _Parser(tokenize(source))
    return parser.parse_unit()
