"""The mini-C type system.

Small by design: ``int`` (32-bit signed), ``char`` (8-bit, unsigned when
loaded), ``void`` (function returns only), pointers, and one- or
two-dimensional arrays of ``int``/``char``.  Pointers are 32-bit byte
addresses into the flat memory model of the interpreter.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

__all__ = ["Type", "INT", "CHAR", "VOID", "ptr", "array_of"]


@dataclass(frozen=True)
class Type:
    """A mini-C type (int, char, void, pointer or array)."""

    kind: str  # "int", "char", "void", "ptr", "array"
    base: Optional["Type"] = None
    length: int = 0  # arrays only

    # --- size & classification -----------------------------------------------

    @property
    def size(self) -> int:
        """Storage size in bytes."""
        if self.kind == "int":
            return 4
        if self.kind == "char":
            return 1
        if self.kind == "ptr":
            return 4
        if self.kind == "array":
            assert self.base is not None
            return self.base.size * self.length
        raise ValueError(f"type {self} has no size")

    @property
    def width(self) -> str:
        """The RTL memory width used to load/store a value of this type."""
        if self.kind == "char":
            return "B"
        return "L"

    def is_scalar(self) -> bool:
        """True for int/char/pointer values (assignable)."""
        return self.kind in ("int", "char", "ptr")

    def is_pointerish(self) -> bool:
        """True for pointers and arrays (indexable)."""
        return self.kind in ("ptr", "array")

    def element(self) -> "Type":
        """The pointee/element type of a pointer or array."""
        assert self.base is not None, f"{self} has no element type"
        return self.base

    def decay(self) -> "Type":
        """Arrays decay to pointers in value contexts."""
        if self.kind == "array":
            return Type("ptr", self.base)
        return self

    def __str__(self) -> str:
        if self.kind == "ptr":
            return f"{self.base}*"
        if self.kind == "array":
            return f"{self.base}[{self.length}]"
        return self.kind


INT = Type("int")
CHAR = Type("char")
VOID = Type("void")


def ptr(base: Type) -> Type:
    """The pointer type ``base*``."""
    return Type("ptr", base)


def array_of(base: Type, length: int) -> Type:
    """The array type ``base[length]``."""
    return Type("array", base, length)
