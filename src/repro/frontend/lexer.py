"""Lexer for the mini-C dialect.

Tokens carry their source position for diagnostics.  The dialect covers
what the benchmark suite needs: the usual operators (including compound
assignment and ``++``/``--``), ``/* */`` and ``//`` comments, character
literals with escapes, and string literals.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from .errors import CompileError

__all__ = ["Token", "tokenize", "KEYWORDS"]

KEYWORDS = frozenset(
    {
        "int",
        "char",
        "void",
        "if",
        "else",
        "while",
        "for",
        "do",
        "return",
        "break",
        "continue",
        "goto",
        "switch",
        "case",
        "default",
        "sizeof",
    }
)

# Multi-character operators, longest first so maximal munch works.
_OPERATORS = [
    "<<=",
    ">>=",
    "==",
    "!=",
    "<=",
    ">=",
    "&&",
    "||",
    "++",
    "--",
    "+=",
    "-=",
    "*=",
    "/=",
    "%=",
    "&=",
    "|=",
    "^=",
    "<<",
    ">>",
    "->",
    "+",
    "-",
    "*",
    "/",
    "%",
    "=",
    "<",
    ">",
    "!",
    "~",
    "&",
    "|",
    "^",
    "?",
    ":",
    ";",
    ",",
    "(",
    ")",
    "[",
    "]",
    "{",
    "}",
]

_ESCAPES = {
    "n": "\n",
    "t": "\t",
    "r": "\r",
    "0": "\0",
    "\\": "\\",
    "'": "'",
    '"': '"',
    "b": "\b",
    "f": "\f",
}


@dataclass
class Token:
    """One lexical token with its source position."""

    kind: str  # "ident", "keyword", "number", "char", "string", "op", "eof"
    text: str
    value: object
    line: int
    column: int

    def __repr__(self) -> str:
        return f"Token({self.kind}, {self.text!r})"


def _decode_escape(text: str, index: int, line: int, col: int) -> (str, int):
    ch = text[index]
    if ch != "\\":
        return ch, index + 1
    index += 1
    if index >= len(text):
        raise CompileError("unterminated escape", line, col)
    esc = text[index]
    if esc in _ESCAPES:
        return _ESCAPES[esc], index + 1
    if esc == "x":
        digits = ""
        index += 1
        while index < len(text) and text[index] in "0123456789abcdefABCDEF":
            digits += text[index]
            index += 1
        if not digits:
            raise CompileError("bad hex escape", line, col)
        return chr(int(digits, 16) & 0xFF), index
    if esc.isdigit():
        digits = esc
        index += 1
        while index < len(text) and text[index].isdigit() and len(digits) < 3:
            digits += text[index]
            index += 1
        return chr(int(digits, 8) & 0xFF), index
    raise CompileError(f"unknown escape \\{esc}", line, col)


def tokenize(source: str) -> List[Token]:
    """Tokenize ``source``; raises :class:`CompileError` on bad input."""
    tokens: List[Token] = []
    pos = 0
    line = 1
    line_start = 0
    n = len(source)
    while pos < n:
        ch = source[pos]
        col = pos - line_start + 1
        if ch == "\n":
            line += 1
            pos += 1
            line_start = pos
            continue
        if ch in " \t\r":
            pos += 1
            continue
        if source.startswith("//", pos):
            while pos < n and source[pos] != "\n":
                pos += 1
            continue
        if source.startswith("/*", pos):
            end = source.find("*/", pos + 2)
            if end < 0:
                raise CompileError("unterminated comment", line, col)
            line += source.count("\n", pos, end)
            nl = source.rfind("\n", pos, end)
            if nl >= 0:
                line_start = nl + 1
            pos = end + 2
            continue
        if ch.isdigit():
            start = pos
            if source.startswith("0x", pos) or source.startswith("0X", pos):
                pos += 2
                while pos < n and source[pos] in "0123456789abcdefABCDEF":
                    pos += 1
                value = int(source[start:pos], 16)
            else:
                while pos < n and source[pos].isdigit():
                    pos += 1
                text = source[start:pos]
                value = int(text, 8) if text.startswith("0") and len(text) > 1 else int(text)
            tokens.append(Token("number", source[start:pos], value, line, col))
            continue
        if ch.isalpha() or ch == "_":
            start = pos
            while pos < n and (source[pos].isalnum() or source[pos] == "_"):
                pos += 1
            text = source[start:pos]
            kind = "keyword" if text in KEYWORDS else "ident"
            tokens.append(Token(kind, text, text, line, col))
            continue
        if ch == "'":
            pos += 1
            if pos >= n:
                raise CompileError("unterminated character literal", line, col)
            value, pos = _decode_escape(source, pos, line, col)
            if pos >= n or source[pos] != "'":
                raise CompileError("unterminated character literal", line, col)
            pos += 1
            tokens.append(Token("char", value, ord(value), line, col))
            continue
        if ch == '"':
            pos += 1
            chars: List[str] = []
            while pos < n and source[pos] != '"':
                if source[pos] == "\n":
                    raise CompileError("newline in string literal", line, col)
                decoded, pos = _decode_escape(source, pos, line, col)
                chars.append(decoded)
            if pos >= n:
                raise CompileError("unterminated string literal", line, col)
            pos += 1
            tokens.append(Token("string", "".join(chars), "".join(chars), line, col))
            continue
        for op in _OPERATORS:
            if source.startswith(op, pos):
                tokens.append(Token("op", op, op, line, col))
                pos += len(op)
                break
        else:
            raise CompileError(f"unexpected character {ch!r}", line, col)
    tokens.append(Token("eof", "", None, line, 1))
    return tokens
