"""The mini-C front-end: lexer, parser, AST, and RTL code generation."""

from .codegen import BUILTINS, compile_c
from .errors import CompileError
from .lexer import Token, tokenize
from .parser import parse
from .types import CHAR, INT, VOID, Type, array_of, ptr

__all__ = [
    "BUILTINS",
    "compile_c",
    "CompileError",
    "Token",
    "tokenize",
    "parse",
    "CHAR",
    "INT",
    "VOID",
    "Type",
    "array_of",
    "ptr",
]
