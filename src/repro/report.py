"""Table formatting used by the benchmark harnesses.

The experiment scripts print rows shaped like the paper's tables; this
module keeps the formatting in one place.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Sequence

__all__ = [
    "format_table",
    "pct",
    "mean",
    "stddev",
    "format_pass_table",
    "format_cache_stats",
    "format_span_tree",
    "format_metrics",
    "format_decision_digest",
    "format_trace_digest",
]


def pct(new: float, base: float) -> str:
    """Relative change ``new`` vs ``base`` in the paper's +x.xx% style."""
    if base == 0:
        return "   n/a"
    change = (new - base) / base * 100.0
    return f"{change:+.2f}%"


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean (0.0 for an empty sequence)."""
    values = list(values)
    if not values:
        return 0.0
    return sum(values) / len(values)


def stddev(values: Sequence[float]) -> float:
    """Sample standard deviation (0.0 below two items)."""
    values = list(values)
    if len(values) < 2:
        return 0.0
    centre = mean(values)
    return (sum((v - centre) ** 2 for v in values) / (len(values) - 1)) ** 0.5


def format_table(
    headers: Sequence[str], rows: Iterable[Sequence[object]]
) -> str:
    """Render an aligned plain-text table."""
    rendered: List[List[str]] = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rendered:
        lines.append(
            "  ".join(cell.rjust(widths[i]) if i else cell.ljust(widths[i]) for i, cell in enumerate(row))
        )
    return "\n".join(lines)


def format_pass_table(aggregate: Mapping[str, Dict[str, float]]) -> str:
    """Render aggregated per-pass instrumentation, slowest pass first.

    ``aggregate`` is the shape produced by
    :meth:`repro.opt.instrument.PassInstrumentation.aggregate`: pass name
    to calls / changed / seconds / rtl_delta / jumps_removed totals.
    """
    rows = [
        [
            name,
            int(agg["calls"]),
            int(agg["changed"]),
            f"{agg['seconds'] * 1000:.1f}",
            f"{int(agg['rtl_delta']):+d}",
            f"{int(agg['jumps_removed']):+d}",
        ]
        for name, agg in sorted(
            aggregate.items(), key=lambda item: -item[1]["seconds"]
        )
    ]
    return format_table(
        ["pass", "calls", "changed", "ms", "ΔRTLs", "jumps removed"], rows
    )


def format_cache_stats(stats: Mapping[str, object]) -> str:
    """One-line summary of :meth:`repro.exec.cache.ResultCache.stats`."""
    return (
        f"cache {stats['root']} (schema v{stats['schema_version']}): "
        f"{stats['entries']} entries, {stats['hits']} hits, "
        f"{stats['misses']} misses, {stats['writes']} writes, "
        f"{stats['evictions']} evictions"
    )


# --- observability rendering ---------------------------------------------------
#
# The aggregation lives in :mod:`repro.obs.digest` (pure data in, plain
# dicts out); this section turns those aggregates into terminal text for
# the ``repro trace`` subcommand and the post-run ``--trace`` summary.


def _format_seconds(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:.2f}s"
    return f"{seconds * 1000:.1f}ms"


def format_span_tree(roots: Sequence[dict], max_depth: int = 6) -> str:
    """Flame-style indented breakdown of an aggregated span tree.

    ``roots`` is the output of :func:`repro.obs.digest.aggregate_spans`.
    Each line shows calls, total and self time plus the share of its
    root's total — the closest a terminal gets to a flame graph.
    """
    lines: List[str] = []
    lines.append(
        f"{'span':<44}  {'calls':>6}  {'total':>9}  {'self':>9}  {'%root':>6}"
    )
    lines.append(f"{'-' * 44}  {'-' * 6}  {'-' * 9}  {'-' * 9}  {'-' * 6}")

    def walk(node: dict, depth: int, root_total: float) -> None:
        indent = "  " * depth
        share = node["total"] / root_total * 100.0 if root_total > 0 else 0.0
        name = f"{indent}{node['name']}"
        if len(name) > 44:
            name = name[:41] + "..."
        lines.append(
            f"{name:<44}  {node['calls']:>6}  "
            f"{_format_seconds(node['total']):>9}  "
            f"{_format_seconds(node['self']):>9}  {share:>5.1f}%"
        )
        if depth + 1 >= max_depth:
            return
        for child in node["children"]:
            walk(child, depth + 1, root_total)

    for root in roots:
        walk(root, 0, root["total"])
    return "\n".join(lines)


def format_metrics(snapshot: Mapping[str, dict]) -> str:
    """Render a metrics-registry snapshot: counters, gauges, histograms."""
    sections: List[str] = []
    counters = snapshot.get("counters") or {}
    if counters:
        rows = [[name, counters[name]] for name in sorted(counters)]
        sections.append(format_table(["counter", "value"], rows))
    gauges = snapshot.get("gauges") or {}
    if gauges:
        rows = [[name, gauges[name]] for name in sorted(gauges)]
        sections.append(format_table(["gauge", "value"], rows))
    histograms = snapshot.get("histograms") or {}
    if histograms:
        rows = []
        for name in sorted(histograms):
            hist = histograms[name]
            bounds = hist["buckets"]
            counts = hist["counts"]
            total = sum(counts)
            parts = []
            for i, count in enumerate(counts):
                if not count:
                    continue
                if i < len(bounds):
                    label = f"<={bounds[i]}"
                else:
                    label = f">{bounds[-1]}"
                parts.append(f"{label}:{count}")
            rows.append([name, total, " ".join(parts) or "-"])
        sections.append(format_table(["histogram", "n", "buckets"], rows))
    return "\n\n".join(sections) if sections else "(no metrics recorded)"


def format_decision_digest(digest: Mapping[str, object]) -> str:
    """Render a :func:`repro.obs.digest.decision_digest` summary."""
    total = digest.get("total", 0)
    if not total:
        return "(no replication decisions recorded)"
    lines: List[str] = []
    outcomes = digest.get("outcomes") or {}
    summary = ", ".join(
        f"{count} {name}" for name, count in sorted(outcomes.items())
    )
    lines.append(
        f"{total} candidate jumps considered: {summary}; "
        f"{digest.get('rtls_replicated', 0)} RTLs replicated across "
        f"{digest.get('blocks_copied', 0)} copied blocks"
    )
    reasons = digest.get("reasons") or {}
    if reasons:
        detail = ", ".join(
            f"{name}={count}"
            for name, count in sorted(reasons.items(), key=lambda i: -i[1])
        )
        lines.append(f"rejection/keep reasons: {detail}")
    kinds = digest.get("sequence_kinds") or {}
    if kinds:
        detail = ", ".join(
            f"{name}={count}" for name, count in sorted(kinds.items())
        )
        lines.append(f"sequence kinds: {detail}")
    functions = digest.get("functions") or []
    if functions:
        rows = [
            [
                row["function"],
                row["decisions"],
                row["accepted"],
                row["rtls"],
                row["rollbacks"],
            ]
            for row in functions[:20]
        ]
        lines.append("")
        lines.append(
            format_table(
                ["function", "decisions", "accepted", "RTLs", "rollbacks"], rows
            )
        )
        if len(functions) > 20:
            lines.append(f"... and {len(functions) - 20} more functions")
    return "\n".join(lines)


def format_trace_digest(events: Sequence[dict]) -> str:
    """Full terminal digest of a JSONL trace: spans, metrics, decisions."""
    from .obs.digest import aggregate_spans, decision_digest, split_events

    spans, decisions, metrics = split_events(list(events))
    sections: List[str] = []
    meta = next((e for e in events if e.get("event") == "meta"), None)
    if meta is not None:
        label = meta.get("label") or "(unlabeled)"
        sections.append(f"trace: {label} (schema v{meta.get('schema', '?')})")
    if spans:
        sections.append("Span breakdown (flame-style, heaviest first):")
        sections.append(format_span_tree(aggregate_spans(spans)))
    else:
        sections.append("(no spans recorded)")
    sections.append("Metrics:")
    sections.append(format_metrics(metrics))
    sections.append("Replication decision log:")
    sections.append(format_decision_digest(decision_digest(decisions)))
    return "\n\n".join(sections)
