"""Table formatting used by the benchmark harnesses.

The experiment scripts print rows shaped like the paper's tables; this
module keeps the formatting in one place.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Sequence

__all__ = [
    "format_table",
    "pct",
    "mean",
    "stddev",
    "format_pass_table",
    "format_cache_stats",
]


def pct(new: float, base: float) -> str:
    """Relative change ``new`` vs ``base`` in the paper's +x.xx% style."""
    if base == 0:
        return "   n/a"
    change = (new - base) / base * 100.0
    return f"{change:+.2f}%"


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean (0.0 for an empty sequence)."""
    values = list(values)
    if not values:
        return 0.0
    return sum(values) / len(values)


def stddev(values: Sequence[float]) -> float:
    """Sample standard deviation (0.0 below two items)."""
    values = list(values)
    if len(values) < 2:
        return 0.0
    centre = mean(values)
    return (sum((v - centre) ** 2 for v in values) / (len(values) - 1)) ** 0.5


def format_table(
    headers: Sequence[str], rows: Iterable[Sequence[object]]
) -> str:
    """Render an aligned plain-text table."""
    rendered: List[List[str]] = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rendered:
        lines.append(
            "  ".join(cell.rjust(widths[i]) if i else cell.ljust(widths[i]) for i, cell in enumerate(row))
        )
    return "\n".join(lines)


def format_pass_table(aggregate: Mapping[str, Dict[str, float]]) -> str:
    """Render aggregated per-pass instrumentation, slowest pass first.

    ``aggregate`` is the shape produced by
    :meth:`repro.opt.instrument.PassInstrumentation.aggregate`: pass name
    to calls / changed / seconds / rtl_delta / jumps_removed totals.
    """
    rows = [
        [
            name,
            int(agg["calls"]),
            int(agg["changed"]),
            f"{agg['seconds'] * 1000:.1f}",
            f"{int(agg['rtl_delta']):+d}",
            f"{int(agg['jumps_removed']):+d}",
        ]
        for name, agg in sorted(
            aggregate.items(), key=lambda item: -item[1]["seconds"]
        )
    ]
    return format_table(
        ["pass", "calls", "changed", "ms", "ΔRTLs", "jumps removed"], rows
    )


def format_cache_stats(stats: Mapping[str, object]) -> str:
    """One-line summary of :meth:`repro.exec.cache.ResultCache.stats`."""
    return (
        f"cache {stats['root']} (schema v{stats['schema_version']}): "
        f"{stats['entries']} entries, {stats['hits']} hits, "
        f"{stats['misses']} misses, {stats['writes']} writes, "
        f"{stats['evictions']} evictions"
    )
