"""Command-line interface: ``python -m repro <command>``.

Commands
--------

``compile``   print the optimized RTL of a mini-C file or named benchmark
``run``       compile, optimize, execute; print the program output
``measure``   print the measurement summary (counts, jumps, no-ops)
``compare``   SIMPLE / LOOPS / JUMPS side by side for one program
``cache``     instruction-cache sweep for one program; ``cache stats`` /
              ``cache gc`` maintain the persistent result cache
``stats``     static-analysis census (instruction mix, loops, jumps)
``dot``       Graphviz DOT rendering of the control-flow graphs
``list``      list the Table-3 benchmark programs
``bench``     run the (program × target × config) evaluation matrix in
              parallel through the persistent result cache; ``--server``
              routes it through a running daemon instead
``serve``     run the compilation-as-a-service job daemon (coalescing,
              single-flight caching, sharded matrix scheduling)
``submit``    submit one cell to the daemon (``--detach`` for fire and
              forget); ``await`` collects a detached job later
``trace``     render the digest of a JSONL observability trace
``fuzz``      fuzz generated programs through the optimizer under the
              translation validator (CI's verify-smoke job)

Translation validation: every compiling command accepts ``--verify
{off,sanitize,full}`` (or ``REPRO_VERIFY``): ``sanitize`` checks CFG/RTL
invariants after every optimizer pass, ``full`` additionally interprets
the program before and after optimization and — on a behaviour change —
bisects to the guilty pass.

Programs are given either as a path to a ``.c`` file or as one of the
benchmark names (``wc``, ``sieve``, …).

Observability: every single-program command accepts ``--trace FILE`` to
record spans, metrics and the replication decision log as JSONL while it
runs (``REPRO_TRACE=FILE`` does the same for any command, including
``bench``); ``repro trace FILE`` renders the digest afterwards.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from .api import POLICIES, compile_and_measure
from .benchsuite import PROGRAMS, program_names
from .cache import CacheConfig, simulate_cache
from .report import format_table, pct
from .rtl import format_function

__all__ = ["main"]


def _source_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "program",
        help="path to a mini-C file, or a benchmark name "
        f"({', '.join(program_names())})",
    )


def _config_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--target",
        choices=["m68020", "sparc"],
        default="sparc",
        help="machine model (default: sparc)",
    )
    parser.add_argument(
        "--replication",
        choices=["none", "loops", "jumps"],
        default="none",
        help="code replication configuration (default: none = SIMPLE)",
    )
    parser.add_argument(
        "--policy",
        choices=sorted(POLICIES),
        default="shortest",
        help="JUMPS step-2 heuristic (default: shortest)",
    )
    parser.add_argument(
        "--max-rtls",
        type=int,
        default=None,
        help="bound on the replication sequence length (§6 extension)",
    )
    parser.add_argument(
        "--spm-engine",
        choices=["lazy", "dense"],
        default=None,
        help="step-1 shortest-path engine (default: lazy, or REPRO_SPM_ENGINE; "
        "dense is the differential oracle)",
    )
    parser.add_argument(
        "--verify",
        choices=["off", "sanitize", "full"],
        default=None,
        help="translation validation: sanitize = CFG/RTL invariants after "
        "every pass; full = also the differential execution oracle with "
        "pass bisection (default: off, or REPRO_VERIFY)",
    )
    parser.add_argument(
        "--ease-engine",
        choices=["compiled", "interp"],
        default=None,
        help="measurement execution engine (default: compiled, or "
        "REPRO_EASE_ENGINE; interp is the closure-interpreter "
        "differential reference)",
    )
    parser.add_argument(
        "--tuned-config",
        type=Path,
        default=None,
        metavar="FILE",
        help="per-function replication overrides emitted by `repro tune`; "
        "functions not named there use the global --policy/--max-rtls",
    )
    parser.add_argument(
        "--stdin",
        type=Path,
        default=None,
        help="file supplying the program's standard input",
    )
    parser.add_argument(
        "--trace",
        type=Path,
        default=None,
        metavar="FILE",
        help="record spans, metrics and the replication decision log "
        "to FILE as JSONL (render with `repro trace FILE`)",
    )


def _resolve(args) -> tuple:
    """(source-or-name, stdin bytes or None)."""
    name = args.program
    stdin: Optional[bytes] = None
    if args.stdin is not None:
        stdin = args.stdin.read_bytes()
    if name in PROGRAMS:
        return name, stdin
    path = Path(name)
    if not path.exists():
        raise SystemExit(
            f"error: {name!r} is neither a benchmark name nor an existing file"
        )
    return path.read_text(), stdin


def _overrides(args) -> Optional[dict]:
    """Per-function tunings from ``--tuned-config`` (keyed by program name)."""
    path = getattr(args, "tuned_config", None)
    if path is None:
        return None
    from .tune import TunedConfigError, load_tuned_config

    try:
        config = load_tuned_config(path)
    except TunedConfigError as exc:
        raise SystemExit(f"error: {exc}")
    return config.overrides_for(args.program) or None


def _measure(args, replication: Optional[str] = None, trace: bool = False):
    source, stdin = _resolve(args)
    return compile_and_measure(
        source,
        target=args.target,
        replication=replication or args.replication,
        stdin=stdin,
        policy=args.policy,
        max_rtls=args.max_rtls,
        trace=trace,
        spm_engine=args.spm_engine,
        verify=args.verify,
        ease_engine=args.ease_engine,
        overrides=_overrides(args),
    )


def cmd_compile(args) -> int:
    """Print the optimized RTL of the program."""
    result = _measure(args)
    for func in result.program.functions.values():
        print(format_function(func))
        print()
    return 0


def cmd_run(args) -> int:
    """Compile, optimize and execute; mirror the program output."""
    result = _measure(args)
    sys.stdout.write(result.output.decode("latin-1"))
    sys.stdout.flush()
    return result.exit_code & 0xFF


def cmd_measure(args) -> int:
    """Print the EASE-style measurement summary."""
    result = _measure(args)
    m = result.measurement
    rows = [
        ["static instructions", m.static_insns],
        ["static unconditional jumps", m.static_jumps],
        ["code bytes", m.code_bytes],
        ["dynamic instructions", m.dynamic_insns],
        ["dynamic unconditional jumps", m.dynamic_jumps],
        ["dynamic no-ops", m.dynamic_nops],
        ["instructions between branches", f"{m.insns_between_branches:.2f}"],
        ["exit code", m.exit_code],
    ]
    print(format_table(["metric", "value"], rows))
    if result.verification is not None:
        v = result.verification
        print(
            f"verified: mode={v['mode']} passes={v['pass_invocations']} "
            f"sanitize={v['sanitize_checks']} oracle_runs={v['oracle_runs']}"
        )
    return 0


def cmd_compare(args) -> int:
    """Print SIMPLE/LOOPS/JUMPS side by side."""
    results = {}
    for replication in ("none", "loops", "jumps"):
        results[replication] = _measure(args, replication=replication)
    base = results["none"].measurement
    outputs = {r.output for r in results.values()}
    rows = []
    for label, key in (("SIMPLE", "none"), ("LOOPS", "loops"), ("JUMPS", "jumps")):
        m = results[key].measurement
        rows.append(
            [
                label,
                m.static_insns,
                pct(m.static_insns, base.static_insns),
                m.dynamic_insns,
                pct(m.dynamic_insns, base.dynamic_insns),
                m.dynamic_jumps,
                m.dynamic_nops,
            ]
        )
    print(
        format_table(
            ["config", "static", "Δstatic", "dynamic", "Δdynamic", "jumps", "nops"],
            rows,
        )
    )
    if len(outputs) != 1:
        print("WARNING: configurations produced different outputs!", file=sys.stderr)
        return 1
    return 0


def _parse_size(text: str) -> int:
    """A byte count with an optional K/M/G suffix (``"64M"`` → bytes)."""
    text = text.strip().upper().removesuffix("B")
    factor = 1
    for suffix, mult in (("K", 1024), ("M", 1024**2), ("G", 1024**3)):
        if text.endswith(suffix):
            text, factor = text[: -len(suffix)], mult
            break
    try:
        return int(float(text) * factor)
    except ValueError:
        raise SystemExit(f"error: unparseable size {text!r}") from None


def _parse_age(text: str) -> float:
    """Seconds with an optional s/m/h/d suffix (``"7d"`` → seconds)."""
    text = text.strip().lower()
    factor = 1.0
    for suffix, mult in (("s", 1.0), ("m", 60.0), ("h", 3600.0), ("d", 86400.0)):
        if text.endswith(suffix):
            text, factor = text[: -len(suffix)], mult
            break
    try:
        return float(text) * factor
    except ValueError:
        raise SystemExit(f"error: unparseable age {text!r}") from None


def _human_bytes(count: Optional[float]) -> str:
    if count is None:
        return "-"
    value = float(count)
    for unit in ("B", "KB", "MB", "GB"):
        if value < 1024 or unit == "GB":
            return f"{value:.1f}{unit}" if unit != "B" else f"{int(value)}B"
        value /= 1024
    return f"{value:.1f}GB"  # pragma: no cover - unreachable


def _cmd_cache_maintenance(args) -> int:
    """``repro cache stats`` / ``repro cache gc`` over the result cache."""
    import time as _time

    from .exec import ResultCache

    cache = ResultCache(args.cache_dir)
    if args.program == "stats":
        info = cache.disk_stats()
        now = _time.time()
        rows = [
            ["root", info["root"]],
            ["schema version", f"v{info['schema_version']} (current)"],
            ["entries", info["entries"]],
            ["bytes", _human_bytes(info["bytes"])],
            [
                "oldest entry",
                f"{(now - info['oldest_mtime']) / 3600:.1f}h ago"
                if info["oldest_mtime"]
                else "-",
            ],
            [
                "newest entry",
                f"{(now - info['newest_mtime']) / 60:.1f}m ago"
                if info["newest_mtime"]
                else "-",
            ],
        ]
        for version, bucket in sorted(info["versions"].items()):
            rows.append(
                [
                    f"  {version}",
                    f"{bucket['entries']} entries, "
                    f"{_human_bytes(bucket['bytes'])}",
                ]
            )
        print(format_table(["cache", "value"], rows))
        return 0

    # gc
    if args.max_bytes is None and args.max_age is None:
        raise SystemExit(
            "error: repro cache gc needs --max-bytes and/or --max-age"
        )
    report = cache.gc(
        max_bytes=_parse_size(args.max_bytes) if args.max_bytes else None,
        max_age=_parse_age(args.max_age) if args.max_age else None,
        dry_run=args.dry_run,
    )
    verb = "would remove" if report["dry_run"] else "removed"
    print(
        f"{verb} {report['removed']} of {report['examined']} entries "
        f"({_human_bytes(report['freed_bytes'])} freed, "
        f"{report['remaining_entries']} entries / "
        f"{_human_bytes(report['remaining_bytes'])} kept, "
        f"{report['tmp_removed']} stale tmp files)"
    )
    return 0


def cmd_cache(args) -> int:
    """Instruction-cache sweep, or result-cache gc/stats maintenance."""
    if args.program in ("gc", "stats"):
        return _cmd_cache_maintenance(args)
    from .cache import resolve_cachesim_engine, simulate_multi_cache

    result = _measure(args, trace=True)
    m = result.measurement
    engine = resolve_cachesim_engine(args.cachesim_engine)
    configs = [CacheConfig(size=size) for size in args.sizes]
    if engine == "multi":
        plain = simulate_multi_cache(m.trace, m.block_fetches, configs, False)
        flushed = simulate_multi_cache(m.trace, m.block_fetches, configs, True)
    else:
        plain = [
            simulate_cache(m.trace, m.block_fetches, config, False)
            for config in configs
        ]
        flushed = [
            simulate_cache(m.trace, m.block_fetches, config, True)
            for config in configs
        ]
    rows = []
    for size, cold, warm in zip(args.sizes, plain, flushed):
        rows.append(
            [
                f"{size}B" if size < 1024 else f"{size // 1024}KB",
                cold.accesses,
                f"{cold.miss_ratio * 100:.3f}%",
                cold.fetch_cost,
                f"{warm.miss_ratio * 100:.3f}%",
                warm.fetch_cost,
            ]
        )
    print(
        format_table(
            ["cache", "fetches", "miss (no ctx)", "cost", "miss (ctx)", "cost (ctx)"],
            rows,
        )
    )
    return 0


def cmd_stats(args) -> int:
    """Print the static-analysis census."""
    from .analysis import (
        function_breakdown,
        instruction_histogram,
        jump_census,
        loop_census,
    )
    from .targets.machine import get_target

    result = _measure(args)
    program = result.program
    target = get_target(args.target)

    print("Instruction mix:")
    histogram = instruction_histogram(program)
    print(
        format_table(
            ["kind", "count"],
            [[k, v] for k, v in sorted(histogram.items()) if v],
        )
    )
    print("\nPer function:")
    print(
        format_table(
            ["function", "blocks", "insns", "jumps", "bytes"],
            function_breakdown(program, target),
        )
    )
    loops = loop_census(program)
    if loops:
        print("\nNatural loops:")
        print(
            format_table(
                ["function", "header", "blocks", "has jump"],
                [[f, h, n, "yes" if j else "no"] for f, h, n, j in loops],
            )
        )
    jumps = jump_census(program)
    if jumps:
        print("\nSurviving unconditional jumps:")
        print(
            format_table(
                ["function", "block", "target", "category"],
                [[j.function, j.block, j.target, j.category] for j in jumps],
            )
        )
    return 0


def cmd_dot(args) -> int:
    """Emit Graphviz DOT for the CFGs.

    Under ``--trace`` the replication decision log is live, so blocks
    created by code replication are annotated (filled light blue).
    """
    from .obs import active as _active_observer
    from .viz import to_dot

    result = _measure(args)
    observer = _active_observer()
    funcs = (
        [result.program.functions[args.function]]
        if args.function
        else result.program.functions.values()
    )
    for func in funcs:
        replicated = (
            observer.decisions.replicated_labels(func.name)
            if observer is not None
            else None
        )
        print(to_dot(func, replicated=replicated))
    return 0


def cmd_list(args) -> int:
    """List the Table-3 benchmark programs."""
    rows = [
        [p.name, p.category, p.description, len(p.stdin)]
        for p in PROGRAMS.values()
    ]
    print(format_table(["name", "class", "description", "stdin bytes"], rows))
    return 0


def cmd_bench(args) -> int:
    """Run the evaluation matrix in parallel through the result cache."""
    import json
    import os
    import time

    from .exec import CellSpec, ParallelRunner, ResultCache
    from .opt.instrument import PassInstrumentation
    from .report import format_cache_stats, format_pass_table

    names = args.programs if args.programs else program_names()
    unknown = [name for name in names if name not in PROGRAMS]
    if unknown:
        raise SystemExit(
            f"error: unknown benchmark(s) {', '.join(unknown)}; "
            f"expected one of {', '.join(program_names())}"
        )
    specs = [
        CellSpec(
            program=name,
            target=target,
            replication=config,
            policy=args.policy,
            max_rtls=args.max_rtls,
            trace=args.trace,
            spm_engine=args.spm_engine,
            verify=args.verify,
            ease_engine=args.ease_engine,
        )
        for target in args.targets
        for config in args.configs
        for name in names
    ]
    done = [0]

    def progress(result) -> None:
        done[0] += 1
        status = "cached" if result.cache_hit else ("FAILED" if not result.ok else "ok")
        print(
            f"[{done[0]:>3}/{len(specs)}] {result.spec.label}: {status}",
            file=sys.stderr,
        )

    on_result = progress if not args.quiet else None
    cache = None
    runner = None
    served_stats = None
    client = None
    if args.server is not None:
        from .serve import ServeClient

        client = ServeClient.try_connect(args.server)
        if client is None:
            print(
                f"warning: no daemon listening on {args.server}; "
                "falling back to local execution",
                file=sys.stderr,
            )

    start = time.perf_counter()
    if client is not None:
        with client:
            results = client.run_matrix(specs, on_result=on_result)
            served_stats = client.stats()
    else:
        cache = None if args.no_cache else ResultCache(args.cache_dir)
        runner = ParallelRunner(workers=args.parallel, cache=cache)
        results = runner.run(specs, on_result=on_result)
    elapsed = time.perf_counter() - start

    from .obs.metrics import MetricsRegistry

    rows = []
    failures = []
    instrumentation = PassInstrumentation()
    metrics = MetricsRegistry()
    for result in results:
        if not result.ok:
            failures.append(result)
            continue
        if not result.cache_hit and result.obs is not None:
            metrics.merge_snapshot(result.obs.get("metrics"))
        m = result.measurement
        rows.append(
            [
                result.spec.program,
                result.spec.target,
                result.spec.replication,
                m.static_insns,
                m.dynamic_insns,
                m.dynamic_jumps,
                m.dynamic_nops,
                f"{result.optimize_seconds:.3f}",
                f"{result.measure_seconds:.3f}",
                "yes" if result.cache_hit else "",
            ]
        )
        instrumentation.merge(PassInstrumentation.from_dicts(result.passes))
    print(
        format_table(
            [
                "program",
                "target",
                "config",
                "static",
                "dynamic",
                "jumps",
                "nops",
                "opt s",
                "run s",
                "cached",
            ],
            rows,
        )
    )
    hits = sum(1 for r in results if r.cache_hit)
    workers = served_stats["workers"] if served_stats is not None else runner.workers
    where = "daemon workers" if served_stats is not None else "workers"
    print(
        f"\n{len(results)} cells in {elapsed:.2f}s "
        f"({workers} {where}, {hits} cache hits, {len(failures)} failed)"
    )
    if served_stats is not None:
        jobs = served_stats["jobs"]
        print(
            f"daemon: {jobs['submitted']} submitted, {jobs['coalesced']} "
            f"coalesced, {jobs['skipped']} cache-skipped, "
            f"{jobs['sharded']} sharded, queue depth "
            f"{served_stats['queue_depth']}"
        )
    if cache is not None:
        print(format_cache_stats(cache.stats()))
    if args.passes and instrumentation.records:
        print("\nPer-pass instrumentation (aggregated over fresh cells):")
        print(format_pass_table(instrumentation.aggregate()))

    if args.json is not None:
        from .ease.compile import resolve_ease_engine

        payload = {
            "machine": {"cpu_count": os.cpu_count()},
            "workers": workers,
            "server": {
                "socket": args.server,
                "stats": served_stats,
            }
            if served_stats is not None
            else None,
            # The resolved measurement engine for this invocation; each
            # cell additionally carries the engine that actually
            # produced its (possibly cached) measurement.
            "ease_engine": resolve_ease_engine(args.ease_engine),
            "elapsed_seconds": elapsed,
            "cache": cache.stats() if cache is not None else None,
            # Aggregated over fresh (non-cache-hit) cells only.
            "passes": instrumentation.aggregate(),
            "metrics": metrics.snapshot(),
            "cells": [
                {
                    "program": r.spec.program,
                    "target": r.spec.target,
                    "config": r.spec.replication,
                    "ok": r.ok,
                    "cache_hit": r.cache_hit,
                    "static_insns": r.measurement.static_insns if r.ok else None,
                    "dynamic_insns": r.measurement.dynamic_insns if r.ok else None,
                    "dynamic_jumps": r.measurement.dynamic_jumps if r.ok else None,
                    "dynamic_nops": r.measurement.dynamic_nops if r.ok else None,
                    "code_bytes": r.measurement.code_bytes if r.ok else None,
                    "ease_engine": (
                        getattr(r.measurement, "ease_engine", "interp")
                        if r.ok
                        else None
                    ),
                    "compile_seconds": r.compile_seconds,
                    "optimize_seconds": r.optimize_seconds,
                    "measure_seconds": r.measure_seconds,
                    "error": r.error,
                }
                for r in results
            ],
        }
        args.json.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"wrote {args.json}")

    for result in failures:
        print(f"\n--- {result.spec.label} failed ---", file=sys.stderr)
        print(result.error, file=sys.stderr)
    return 1 if failures else 0


def cmd_tune(args) -> int:
    """Autotune per-function replication policies over the suite."""
    import json
    import time

    from .exec import ResultCache
    from .tune import TuneGrid, tune

    names = args.programs if args.programs else program_names()
    unknown = [name for name in names if name not in PROGRAMS]
    if unknown:
        raise SystemExit(
            f"error: unknown benchmark(s) {', '.join(unknown)}; "
            f"expected one of {', '.join(program_names())}"
        )
    bounds = None
    if args.bounds is not None:
        bounds = tuple(
            None if raw.lower() in ("none", "inf", "unbounded") else int(raw)
            for raw in args.bounds
        )
    try:
        grid = TuneGrid.parse(
            policies=args.policies, bounds=bounds, orders=args.orders
        )
    except ValueError as exc:
        raise SystemExit(f"error: {exc}")

    cache = None if args.no_cache else ResultCache(args.cache_dir)
    say = (lambda _m: None) if args.quiet else (
        lambda message: print(message, file=sys.stderr)
    )
    start = time.perf_counter()
    try:
        report = tune(
            names,
            target=args.target,
            policy=args.policy,
            max_rtls=args.max_rtls,
            grid=grid,
            workers=args.parallel,
            cache=cache,
            server=args.server,
            verify_gate=not args.no_verify_gate,
            on_progress=say,
        )
    except RuntimeError as exc:
        raise SystemExit(f"error: {exc}")
    elapsed = time.perf_counter() - start

    rows = []
    for program_report in report.programs:
        winners = ", ".join(
            f"{f.function}={f.winner.label}"
            for f in program_report.functions
            if f.improved
        )
        rows.append(
            [
                program_report.program,
                program_report.baseline.formatted()[1],
                program_report.tuned.formatted()[1],
                program_report.fixed[
                    min(
                        program_report.fixed,
                        key=lambda p: program_report.fixed[p].dynamic_insns,
                    )
                ].formatted()[1],
                winners or "(baseline)",
            ]
        )
    print(
        format_table(
            ["program", "Δdyn base", "Δdyn tuned", "Δdyn best fixed", "winners"],
            rows,
        )
    )
    tuned = report.tuned_aggregate
    baseline = report.baseline_aggregate
    print(
        f"\naggregate dynamic change: tuned "
        f"{tuned.dynamic_change_mean * 100:+.2f}% vs baseline "
        f"{baseline.dynamic_change_mean * 100:+.2f}% "
        f"({len(report.programs)} programs, grid {report.grid_size}, "
        f"{elapsed:.1f}s{', served' if report.served else ''})"
    )
    gate_failures = [p for p in report.programs if p.gate_failure]
    for failure in gate_failures:
        print(
            f"verify gate REJECTED {failure.program}: {failure.gate_failure}",
            file=sys.stderr,
        )

    report.config.save(args.output)
    print(f"wrote tuned config to {args.output}")
    if args.json is not None:
        args.json.write_text(json.dumps(report.as_dict(), indent=2) + "\n")
        print(f"wrote full report to {args.json}")
    return 1 if gate_failures else 0


def cmd_fuzz(args) -> int:
    """Fuzz generated programs through the optimizer under verification."""
    import time

    from .verify import run_campaign

    start = time.perf_counter()
    result = run_campaign(
        args.count,
        seed=args.seed,
        target=args.target,
        replication=args.replication,
        mode=args.mode,
        minimize=not args.no_minimize,
        max_rtls=args.max_rtls if args.max_rtls > 0 else None,
    )
    elapsed = time.perf_counter() - start
    print(
        f"{result.programs_run} programs fuzzed in {elapsed:.1f}s "
        f"({result.totals.get('pass_invocations', 0)} pass invocations, "
        f"{result.totals.get('sanitize_checks', 0)} sanitizer checks, "
        f"{result.totals.get('oracle_runs', 0)} oracle runs, "
        f"{result.totals.get('valve_trips', 0)} valve trips, "
        f"{result.totals.get('guard_stops', 0)} guard stops, "
        f"{result.failures} failures)"
    )
    if result.ok:
        return 0
    failure = result.first_failure or {}
    print(
        f"\nFAILURE at seed {failure.get('seed')}:\n{failure.get('error')}",
        file=sys.stderr,
    )
    if args.reproducer is not None and "minimized" in failure:
        args.reproducer.write_text(str(failure["minimized"]))
        print(f"minimized reproducer written to {args.reproducer}", file=sys.stderr)
    elif "minimized" in failure:
        print(f"\nminimized reproducer:\n{failure['minimized']}", file=sys.stderr)
    return 1


def cmd_trace(args) -> int:
    """Render the digest of a JSONL observability trace."""
    from .obs.sink import read_events
    from .report import format_trace_digest

    if not args.file.exists():
        print(f"error: no such trace file: {args.file}", file=sys.stderr)
        return 1
    events, problems = read_events(args.file)
    for problem in problems:
        print(f"warning: {args.file}: {problem}", file=sys.stderr)
    if not events:
        print(f"error: {args.file} contains no trace events", file=sys.stderr)
        return 1
    print(format_trace_digest(events))
    return 0


def cmd_serve(args) -> int:
    """Run the compilation-and-measurement job daemon."""
    import asyncio

    from .serve import ServeDaemon

    daemon = ServeDaemon(
        socket_path=args.socket,
        workers=args.workers,
        cache_dir=None if args.no_cache else args.cache_dir,
        prewarm=not args.no_prewarm,
    )
    asyncio.run(daemon.run())
    return 0


def _spec_from_args(args) -> "CellSpec":
    from .exec import CellSpec

    source, stdin = _resolve(args)
    return CellSpec(
        program=source,
        target=args.target,
        replication=args.replication,
        policy=args.policy,
        max_rtls=args.max_rtls,
        trace=args.trace_blocks,
        stdin=stdin,
        spm_engine=args.spm_engine,
        verify=args.verify,
        ease_engine=args.ease_engine,
    )


def _print_cell_result(result) -> int:
    if not result.ok:
        print(f"--- {result.spec.label} failed ---", file=sys.stderr)
        print(result.error, file=sys.stderr)
        return 1
    m = result.measurement
    origin = "cached" if result.cache_hit else "fresh"
    print(
        f"{result.spec.label}: exit {m.exit_code}, "
        f"{m.dynamic_insns} instructions, {m.dynamic_jumps} jumps, "
        f"{m.dynamic_nops} no-ops ({origin})"
    )
    return 0


def cmd_submit(args) -> int:
    """Submit one cell to the daemon (or run it locally as fallback)."""
    from .serve import ServeClient

    spec = _spec_from_args(args)
    client = ServeClient.try_connect(args.server)
    if client is None:
        if args.detach:
            raise SystemExit(
                f"error: no daemon listening on {args.server} "
                "(--detach needs a daemon)"
            )
        print(
            f"warning: no daemon listening on {args.server}; "
            "running locally",
            file=sys.stderr,
        )
        from .exec import execute_cell

        return _print_cell_result(execute_cell(spec))
    with client:
        descriptor = client.submit(spec)
        state = descriptor["state"]
        note = " (coalesced)" if descriptor.get("coalesced") else ""
        print(
            f"job {descriptor['job']} [{descriptor['key'][:16]}] "
            f"{state}{note}",
            file=sys.stderr,
        )
        if args.detach:
            print(descriptor["job"])
            return 0
        result = client.result(
            descriptor["job"], wait=True, timeout=args.timeout
        )
    if result is None:
        print(f"job {descriptor['job']} was cancelled", file=sys.stderr)
        return 1
    return _print_cell_result(result)


def cmd_await(args) -> int:
    """Wait for a previously submitted daemon job and print its result."""
    from .serve import ServeClient, ServeError

    client = ServeClient.try_connect(args.server)
    if client is None:
        raise SystemExit(f"error: no daemon listening on {args.server}")
    with client:
        try:
            result = client.result(args.job, wait=True, timeout=args.timeout)
        except ServeError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
    if result is None:
        print(f"job {args.job} was cancelled", file=sys.stderr)
        return 1
    return _print_cell_result(result)


def build_parser() -> argparse.ArgumentParser:
    """Construct the argparse command-line parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of Mueller & Whalley, PLDI 1992: "
        "code replication against unconditional jumps.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("compile", help="print optimized RTL")
    _source_argument(p)
    _config_arguments(p)
    p.set_defaults(func=cmd_compile)

    p = sub.add_parser("run", help="compile and execute")
    _source_argument(p)
    _config_arguments(p)
    p.set_defaults(func=cmd_run)

    p = sub.add_parser("measure", help="print the measurement summary")
    _source_argument(p)
    _config_arguments(p)
    p.set_defaults(func=cmd_measure)

    p = sub.add_parser("compare", help="SIMPLE/LOOPS/JUMPS side by side")
    _source_argument(p)
    _config_arguments(p)
    p.set_defaults(func=cmd_compare)

    p = sub.add_parser(
        "cache",
        help="instruction-cache sweep for a program, or result-cache "
        "maintenance (`repro cache stats`, `repro cache gc`)",
    )
    _source_argument(p)
    _config_arguments(p)
    p.add_argument(
        "--cache-dir",
        default=".repro-cache",
        help="result cache directory for gc/stats (default: .repro-cache)",
    )
    p.add_argument(
        "--max-bytes",
        default=None,
        metavar="SIZE",
        help="gc: evict least-recently-used entries until the cache fits "
        "SIZE (suffixes K/M/G)",
    )
    p.add_argument(
        "--max-age",
        default=None,
        metavar="AGE",
        help="gc: evict entries older than AGE (suffixes s/m/h/d)",
    )
    p.add_argument(
        "--dry-run",
        action="store_true",
        help="gc: report what would be evicted without removing anything",
    )
    p.add_argument(
        "--sizes",
        type=int,
        nargs="+",
        default=[128, 256, 512, 1024, 2048, 4096, 8192],
        help="cache sizes in bytes",
    )
    p.add_argument(
        "--cachesim-engine",
        choices=["reference", "multi"],
        default=None,
        help="cache simulator (default: multi, or REPRO_CACHESIM_ENGINE; "
        "reference replays the trace once per size — the differential oracle)",
    )
    p.set_defaults(func=cmd_cache)

    p = sub.add_parser("stats", help="static analysis census")
    _source_argument(p)
    _config_arguments(p)
    p.set_defaults(func=cmd_stats)

    p = sub.add_parser("dot", help="emit the CFG as Graphviz DOT")
    _source_argument(p)
    _config_arguments(p)
    p.add_argument("--function", default=None, help="only this function")
    p.set_defaults(func=cmd_dot)

    p = sub.add_parser("list", help="list the benchmark programs")
    p.set_defaults(func=cmd_list)

    p = sub.add_parser(
        "bench",
        help="run the evaluation matrix in parallel through the result cache",
    )
    p.add_argument(
        "--parallel",
        type=int,
        default=None,
        metavar="N",
        help="worker processes (default: one per core; 0/1 = inline)",
    )
    p.add_argument(
        "--cache-dir",
        default=".repro-cache",
        help="persistent result cache directory (default: .repro-cache)",
    )
    p.add_argument(
        "--no-cache", action="store_true", help="bypass the persistent cache"
    )
    p.add_argument(
        "--programs",
        nargs="+",
        default=None,
        metavar="NAME",
        help="subset of benchmark programs (default: all 14)",
    )
    p.add_argument(
        "--targets",
        nargs="+",
        choices=["sparc", "m68020"],
        default=["sparc", "m68020"],
        help="machine models (default: both)",
    )
    p.add_argument(
        "--configs",
        nargs="+",
        choices=["none", "loops", "jumps"],
        default=["none", "loops", "jumps"],
        help="replication configurations (default: all three)",
    )
    p.add_argument(
        "--policy",
        choices=sorted(POLICIES),
        default="shortest",
        help="JUMPS step-2 heuristic (default: shortest)",
    )
    p.add_argument(
        "--max-rtls",
        type=int,
        default=None,
        help="bound on the replication sequence length (§6 extension)",
    )
    p.add_argument(
        "--spm-engine",
        choices=["lazy", "dense"],
        default=None,
        help="step-1 shortest-path engine (default: lazy)",
    )
    p.add_argument(
        "--ease-engine",
        choices=["compiled", "interp"],
        default=None,
        help="EASE execution engine "
        "(default: compiled, or REPRO_EASE_ENGINE)",
    )
    p.add_argument(
        "--trace",
        action="store_true",
        help="record block traces (needed for cache simulation; bigger entries)",
    )
    p.add_argument(
        "--passes",
        action="store_true",
        help="print aggregated per-pass instrumentation",
    )
    p.add_argument(
        "--json", type=Path, default=None, help="write results to a JSON file"
    )
    p.add_argument(
        "--verify",
        choices=["off", "sanitize", "full"],
        default=None,
        help="run every cell under translation validation "
        "(bypasses the result cache; default: off, or REPRO_VERIFY)",
    )
    p.add_argument(
        "--quiet", action="store_true", help="suppress per-cell progress on stderr"
    )
    p.add_argument(
        "--server",
        default=None,
        metavar="SOCK",
        help="route cells through the `repro serve` daemon on this Unix "
        "socket (falls back to local execution when none is listening)",
    )
    p.set_defaults(func=cmd_bench)

    p = sub.add_parser(
        "tune",
        help="autotune per-function replication policies over the suite",
    )
    p.add_argument(
        "--programs",
        nargs="+",
        default=None,
        metavar="NAME",
        help="subset of benchmark programs (default: all 14)",
    )
    p.add_argument(
        "--target",
        choices=["m68020", "sparc"],
        default="sparc",
        help="machine model (default: sparc)",
    )
    p.add_argument(
        "--policy",
        choices=sorted(POLICIES),
        default="shortest",
        help="global baseline policy the overrides are tuned against "
        "(default: shortest)",
    )
    p.add_argument(
        "--max-rtls",
        type=int,
        default=None,
        help="global baseline bound on replication sequence length",
    )
    p.add_argument(
        "--policies",
        nargs="+",
        choices=sorted(POLICIES),
        default=None,
        metavar="POLICY",
        help="candidate policies to sweep (default: all three)",
    )
    p.add_argument(
        "--bounds",
        nargs="+",
        default=None,
        metavar="N|none",
        help="candidate max-RTL bounds to sweep (default: none 4 8 16)",
    )
    p.add_argument(
        "--orders",
        nargs="+",
        choices=["standard", "late", "nofinal"],
        default=None,
        metavar="ORDER",
        help="candidate pass orderings to sweep (default: all three)",
    )
    p.add_argument(
        "--output",
        type=Path,
        default=Path("tuned.json"),
        metavar="FILE",
        help="tuned-config file to write (default: tuned.json)",
    )
    p.add_argument(
        "--json",
        type=Path,
        default=None,
        metavar="FILE",
        help="also write the full tuning report as JSON",
    )
    p.add_argument(
        "--parallel",
        type=int,
        default=None,
        metavar="N",
        help="worker processes (default: one per core)",
    )
    p.add_argument(
        "--cache-dir",
        default=".repro-cache",
        help="persistent result cache directory (default: .repro-cache)",
    )
    p.add_argument(
        "--no-cache", action="store_true", help="bypass the persistent cache"
    )
    p.add_argument(
        "--server",
        default=None,
        metavar="SOCK",
        help="route cells through the `repro serve` daemon on this Unix "
        "socket (falls back to local execution when none is listening)",
    )
    p.add_argument(
        "--no-verify-gate",
        action="store_true",
        help="skip the full-verification gate on combined winners "
        "(the gate is on by default: tuned output must be byte-identical "
        "under the differential oracle)",
    )
    p.add_argument(
        "--quiet", action="store_true", help="suppress progress on stderr"
    )
    p.set_defaults(func=cmd_tune)

    p = sub.add_parser(
        "fuzz",
        help="fuzz generated programs through the optimizer under the "
        "translation validator",
    )
    p.add_argument(
        "--count", type=int, default=50, metavar="N", help="programs to fuzz"
    )
    p.add_argument(
        "--seed", type=int, default=0, help="base seed (program i uses seed+i)"
    )
    p.add_argument(
        "--target",
        choices=["m68020", "sparc"],
        default="sparc",
        help="machine model (default: sparc)",
    )
    p.add_argument(
        "--replication",
        choices=["none", "loops", "jumps"],
        default="jumps",
        help="replication configuration (default: jumps)",
    )
    p.add_argument(
        "--mode",
        choices=["sanitize", "full"],
        default="full",
        help="verification mode (default: full)",
    )
    p.add_argument(
        "--max-rtls",
        type=int,
        default=0,
        help="replication sequence-length bound for fuzzed programs "
        "(default: 0 = unbounded; the convergence guard keeps "
        "unbounded campaigns fast)",
    )
    p.add_argument(
        "--no-minimize",
        action="store_true",
        help="skip ddmin reduction of a failing program",
    )
    p.add_argument(
        "--reproducer",
        type=Path,
        default=None,
        metavar="FILE",
        help="write the minimized failing program here (CI artifact)",
    )
    p.set_defaults(func=cmd_fuzz)

    p = sub.add_parser(
        "trace", help="render the digest of a JSONL observability trace"
    )
    p.add_argument(
        "file",
        type=Path,
        help="JSONL trace written by --trace FILE or REPRO_TRACE=FILE",
    )
    p.set_defaults(func=cmd_trace)

    from .serve.server import DEFAULT_SOCKET

    p = sub.add_parser(
        "serve",
        help="run the compilation-and-measurement job daemon "
        "(Unix-socket JSON-line protocol)",
    )
    p.add_argument(
        "--socket",
        default=DEFAULT_SOCKET,
        metavar="SOCK",
        help=f"Unix socket path (default: {DEFAULT_SOCKET})",
    )
    p.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help="warm worker processes (default: one per core)",
    )
    p.add_argument(
        "--cache-dir",
        default=".repro-cache",
        help="persistent result cache directory (default: .repro-cache)",
    )
    p.add_argument(
        "--no-cache",
        action="store_true",
        help="serve without the persistent cache (coalescing still applies)",
    )
    p.add_argument(
        "--no-prewarm",
        action="store_true",
        help="skip the worker prewarm probes at startup",
    )
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser(
        "submit", help="submit one cell to the `repro serve` daemon"
    )
    _source_argument(p)
    _config_arguments(p)
    p.add_argument(
        "--trace-blocks",
        action="store_true",
        help="record the block trace (needed for cache simulation)",
    )
    p.add_argument(
        "--server",
        default=DEFAULT_SOCKET,
        metavar="SOCK",
        help=f"daemon socket (default: {DEFAULT_SOCKET})",
    )
    p.add_argument(
        "--detach",
        action="store_true",
        help="print the job id and exit without waiting "
        "(collect with `repro await`)",
    )
    p.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="give up waiting after this long (default: wait forever)",
    )
    p.set_defaults(func=cmd_submit)

    p = sub.add_parser(
        "await", help="wait for a daemon job submitted with --detach"
    )
    p.add_argument("job", help="job id printed by `repro submit --detach`")
    p.add_argument(
        "--server",
        default=DEFAULT_SOCKET,
        metavar="SOCK",
        help=f"daemon socket (default: {DEFAULT_SOCKET})",
    )
    p.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="give up waiting after this long (default: wait forever)",
    )
    p.set_defaults(func=cmd_await)

    return parser


def _trace_destination(args) -> Optional[Path]:
    """Where (if anywhere) this invocation should write its trace.

    An explicit ``--trace FILE`` wins; otherwise ``REPRO_TRACE`` applies
    to any command except ``trace`` itself (tracing the digest renderer
    would clobber the very file being read) and ``list``.  ``bench``
    repurposes ``--trace`` as a boolean (block traces for the cache
    simulations), so only the environment variable reaches it.
    """
    from .obs.sink import trace_path_from_env

    explicit = getattr(args, "trace", None)
    if isinstance(explicit, Path):
        return explicit
    if args.command in ("trace", "list"):
        return None
    destination = trace_path_from_env()
    return Path(destination) if destination else None


def _run_traced(args, destination: Path) -> int:
    """Run the command under a fresh observer; write + summarize the trace."""
    from .obs import observing
    from .obs.digest import decision_digest
    from .report import format_decision_digest

    label = f"repro {args.command} {getattr(args, 'program', '')}".strip()
    with observing(jsonl_path=destination, label=label) as observer:
        code = args.func(args)
    snapshot = observer.snapshot()
    digest = decision_digest(snapshot["decisions"])
    print("\n--- observability summary ---", file=sys.stderr)
    print(format_decision_digest(digest), file=sys.stderr)
    print(
        f"wrote trace ({len(snapshot['spans'])} spans, "
        f"{digest['total']} decisions) to {destination}",
        file=sys.stderr,
    )
    return code


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        destination = _trace_destination(args)
        if destination is not None:
            return _run_traced(args, destination)
        return args.func(args)
    except BrokenPipeError:
        # Output piped into e.g. `head`; exit quietly like other CLIs.
        try:
            sys.stdout.close()
        except Exception:
            pass
        return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
