"""Table-5/6 scoring, shared by the ablation benches and the autotuner.

The paper's evaluation reports each configuration as the relative change
in *static* instructions (Table 5, code growth) and *dynamic*
instructions (Table 6, execution savings) against the SIMPLE baseline.
The ablation harnesses (``benchmarks/bench_ablation_policy.py`` /
``bench_ablation_maxlen.py``) and the per-function autotuner
(:mod:`repro.tune`) all score candidates this way; this module is the
single code path computing those numbers, so a bench table and a tuner
decision can never disagree about what a candidate scored.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Tuple

__all__ = [
    "TableScore",
    "AggregateScore",
    "relative_change",
    "format_change",
    "score_measurement",
    "candidate_key",
    "aggregate_scores",
]


def relative_change(new: float, base: float) -> float:
    """Fractional change of ``new`` against ``base`` (0.0 for base 0)."""
    if base == 0:
        return 0.0
    return (new - base) / base


def format_change(fraction: float) -> str:
    """Render a fractional change in the paper's ``+x.xx%`` style."""
    return f"{fraction * 100:+.2f}%"


@dataclass(frozen=True)
class TableScore:
    """One candidate's Table-5/6 numbers for one program."""

    program: str
    #: Raw counts of the candidate configuration.
    static_insns: int
    dynamic_insns: int
    code_bytes: int
    #: Relative changes vs the SIMPLE baseline of the same program.
    static_change: float
    dynamic_change: float

    def formatted(self) -> Tuple[str, str]:
        """The (Δstatic, Δdynamic) pair in the paper's percent style."""
        return format_change(self.static_change), format_change(self.dynamic_change)

    def as_dict(self) -> Dict[str, object]:
        return {
            "program": self.program,
            "static_insns": self.static_insns,
            "dynamic_insns": self.dynamic_insns,
            "code_bytes": self.code_bytes,
            "static_change": self.static_change,
            "dynamic_change": self.dynamic_change,
        }


def score_measurement(program: str, measurement, baseline) -> TableScore:
    """Score one measurement against the program's SIMPLE baseline.

    Both arguments are :class:`repro.ease.measure.Measurement`-shaped
    (anything with ``static_insns`` / ``dynamic_insns`` / ``code_bytes``).
    """
    return TableScore(
        program=program,
        static_insns=measurement.static_insns,
        dynamic_insns=measurement.dynamic_insns,
        code_bytes=measurement.code_bytes,
        static_change=relative_change(
            measurement.static_insns, baseline.static_insns
        ),
        dynamic_change=relative_change(
            measurement.dynamic_insns, baseline.dynamic_insns
        ),
    )


def candidate_key(score: TableScore) -> Tuple[int, int, int]:
    """Total order for tuner candidates — smaller is better.

    Dynamic instructions first (the paper's headline metric), static
    instructions as the tie-break (minimal growth among equally fast
    candidates), code bytes last (capacity effects, Table 6's concern).
    """
    return (score.dynamic_insns, score.static_insns, score.code_bytes)


@dataclass(frozen=True)
class AggregateScore:
    """Suite-level Table-5/6 aggregate: mean relative changes."""

    programs: int
    static_change_mean: float
    dynamic_change_mean: float
    static_insns_total: int
    dynamic_insns_total: int

    def as_dict(self) -> Dict[str, object]:
        return {
            "programs": self.programs,
            "static_change_mean": self.static_change_mean,
            "dynamic_change_mean": self.dynamic_change_mean,
            "static_insns_total": self.static_insns_total,
            "dynamic_insns_total": self.dynamic_insns_total,
        }


def aggregate_scores(scores: Iterable[TableScore]) -> AggregateScore:
    """The paper's suite aggregate: mean per-program relative changes."""
    items: List[TableScore] = list(scores)
    n = len(items)
    if n == 0:
        return AggregateScore(0, 0.0, 0.0, 0, 0)
    return AggregateScore(
        programs=n,
        static_change_mean=sum(s.static_change for s in items) / n,
        dynamic_change_mean=sum(s.dynamic_change for s in items) / n,
        static_insns_total=sum(s.static_insns for s in items),
        dynamic_insns_total=sum(s.dynamic_insns for s in items),
    )
