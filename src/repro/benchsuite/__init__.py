"""The 14-program test set (Table 3) and the measurement pipeline."""

from .programs import PROGRAMS, BenchmarkProgram, program_names
from .runner import (
    clear_cache,
    compile_benchmark,
    run_benchmark,
    run_matrix,
    run_suite,
)

__all__ = [
    "PROGRAMS",
    "BenchmarkProgram",
    "program_names",
    "clear_cache",
    "compile_benchmark",
    "run_benchmark",
    "run_matrix",
    "run_suite",
]
