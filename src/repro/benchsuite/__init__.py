"""The 14-program test set (Table 3) and the measurement pipeline."""

from .programs import PROGRAMS, BenchmarkProgram, program_names
from .runner import (
    clear_cache,
    compile_benchmark,
    run_benchmark,
    run_matrix,
    run_suite,
)
from .scoring import (
    AggregateScore,
    TableScore,
    aggregate_scores,
    candidate_key,
    format_change,
    relative_change,
    score_measurement,
)

__all__ = [
    "PROGRAMS",
    "BenchmarkProgram",
    "program_names",
    "clear_cache",
    "compile_benchmark",
    "run_benchmark",
    "run_matrix",
    "run_suite",
    "AggregateScore",
    "TableScore",
    "aggregate_scores",
    "candidate_key",
    "format_change",
    "relative_change",
    "score_measurement",
]
