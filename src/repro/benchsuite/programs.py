"""The test set of C programs (Table 3 of the paper).

Every program is rewritten in the mini-C dialect, preserving the
control-flow character of the original (text filters with per-character
loops, sorts, nested numeric loops, recursion, table-driven dispatch),
because that is what determines how many unconditional jumps the compiler
emits and what code replication can do about them.

========== =========================== =================================
Class      Name                        Description (paper's Table 3)
========== =========================== =================================
Utilities  banner                      banner generator
           cal                         calendar generator
           compact                     file compression
           deroff                      remove nroff constructs
           grep                        pattern search
           od                          octal dump
           sort                        sort or merge files
           wc                          word count
Benchmarks bubblesort                  sort numbers
           matmult                     matrix multiplication
           sieve                       iteration
           queens                      8-queens problem
           quicksort                   sort numbers (iterative)
User code  mincost                     VLSI circuit partitioning
========== =========================== =================================

Workloads are deterministic and scaled so each program executes roughly
10^4–10^6 RTLs (the paper ran up to 29M; ratios, not magnitudes, are what
the experiments compare — see DESIGN.md §5).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

__all__ = ["BenchmarkProgram", "PROGRAMS", "program_names"]


@dataclass
class BenchmarkProgram:
    """One Table-3 program: source text plus its deterministic workload."""

    name: str
    category: str
    description: str
    source: str
    stdin: bytes = b""


def _lcg_text(seed: int, size: int) -> bytes:
    """Deterministic pseudo-text: words, punctuation and newlines."""
    out = bytearray()
    state = seed
    while len(out) < size:
        state = (state * 1103515245 + 12345) & 0x7FFFFFFF
        word_len = 1 + (state >> 16) % 9
        for i in range(word_len):
            state = (state * 1103515245 + 12345) & 0x7FFFFFFF
            out.append(ord("a") + (state >> 16) % 26)
        state = (state * 1103515245 + 12345) & 0x7FFFFFFF
        roll = (state >> 16) % 12
        if roll < 7:
            out.append(ord(" "))
        elif roll < 10:
            out.append(ord("\n"))
        elif roll == 10:
            out.extend(b". ")
        else:
            out.extend(b", ")
    return bytes(out[:size])


def _nroff_text() -> bytes:
    """Text sprinkled with nroff requests and font escapes for deroff."""
    body = _lcg_text(7, 2600).decode("latin-1")
    lines = body.split("\n")
    out = []
    requests = [".PP", ".SH NAME", ".br", ".ft B", ".in +2", ".TH WC 1"]
    for i, line in enumerate(lines):
        if i % 4 == 1:
            out.append(requests[i % len(requests)])
        if i % 5 == 2 and len(line) > 4:
            line = line[:3] + "\\fB" + line[3:] + "\\fP"
        out.append(line)
    return ("\n".join(out) + "\n").encode("latin-1")


WC_SOURCE = r"""
int main() {
    int lines, words, chars, c, inword;
    lines = 0;
    words = 0;
    chars = 0;
    inword = 0;
    c = getchar();
    while (c != -1) {
        chars++;
        if (c == '\n')
            lines++;
        if (c == ' ' || c == '\n' || c == '\t')
            inword = 0;
        else if (inword == 0) {
            inword = 1;
            words++;
        }
        c = getchar();
    }
    printf("%7d %7d %7d\n", lines, words, chars);
    return 0;
}
"""

SIEVE_SOURCE = r"""
int flags[4096];

int main() {
    int i, k, count, iter;
    count = 0;
    for (iter = 0; iter < 8; iter++) {
        count = 0;
        for (i = 2; i < 4096; i++)
            flags[i] = 1;
        for (i = 2; i < 4096; i++) {
            if (flags[i]) {
                count++;
                for (k = i + i; k < 4096; k += i)
                    flags[k] = 0;
            }
        }
    }
    printf("%d primes\n", count);
    return 0;
}
"""

BUBBLESORT_SOURCE = r"""
int data[450];

int main() {
    int i, j, t, n, seed, swaps;
    n = 450;
    seed = 12345;
    for (i = 0; i < n; i++) {
        seed = seed * 1103515245 + 12345;
        data[i] = (seed >> 8) & 32767;
    }
    swaps = 0;
    for (i = 0; i < n - 1; i++) {
        for (j = 0; j < n - 1 - i; j++) {
            if (data[j] > data[j + 1]) {
                t = data[j];
                data[j] = data[j + 1];
                data[j + 1] = t;
                swaps++;
            }
        }
    }
    for (i = 1; i < n; i++) {
        if (data[i - 1] > data[i]) {
            printf("NOT SORTED\n");
            return 1;
        }
    }
    printf("sorted %d numbers, %d swaps, min %d max %d\n",
           n, swaps, data[0], data[n - 1]);
    return 0;
}
"""

MATMULT_SOURCE = r"""
int a[24][24];
int b[24][24];
int c[24][24];

int main() {
    int i, j, k, n, sum, trace, rep;
    n = 24;
    for (i = 0; i < n; i++) {
        for (j = 0; j < n; j++) {
            a[i][j] = i + j;
            b[i][j] = i - j;
        }
    }
    for (rep = 0; rep < 4; rep++) {
        for (i = 0; i < n; i++) {
            for (j = 0; j < n; j++) {
                sum = 0;
                for (k = 0; k < n; k++)
                    sum += a[i][k] * b[k][j];
                c[i][j] = sum;
            }
        }
    }
    trace = 0;
    for (i = 0; i < n; i++)
        trace += c[i][i];
    printf("trace %d\n", trace);
    return 0;
}
"""

QUEENS_SOURCE = r"""
int rows[8];
int down[15];
int updiag[15];
int solutions;

int place(int col) {
    int row;
    if (col == 8) {
        solutions++;
        return 0;
    }
    for (row = 0; row < 8; row++) {
        if (rows[row] == 0 && down[row + col] == 0 && updiag[row - col + 7] == 0) {
            rows[row] = 1;
            down[row + col] = 1;
            updiag[row - col + 7] = 1;
            place(col + 1);
            rows[row] = 0;
            down[row + col] = 0;
            updiag[row - col + 7] = 0;
        }
    }
    return 0;
}

int main() {
    solutions = 0;
    place(0);
    printf("%d solutions\n", solutions);
    return 0;
}
"""

QUICKSORT_SOURCE = r"""
int data[1400];
int stack[64];

int main() {
    int i, n, seed, sp, lo, hi, pivot, x, t;
    n = 1400;
    seed = 99;
    for (i = 0; i < n; i++) {
        seed = seed * 1103515245 + 12345;
        data[i] = (seed >> 7) & 65535;
    }
    sp = 0;
    stack[sp++] = 0;
    stack[sp++] = n - 1;
    while (sp > 0) {
        hi = stack[--sp];
        lo = stack[--sp];
        while (lo < hi) {
            x = data[(lo + hi) / 2];
            i = lo;
            pivot = hi;
            while (i <= pivot) {
                while (data[i] < x)
                    i++;
                while (data[pivot] > x)
                    pivot--;
                if (i <= pivot) {
                    t = data[i];
                    data[i] = data[pivot];
                    data[pivot] = t;
                    i++;
                    pivot--;
                }
            }
            if (pivot - lo < hi - i) {
                if (i < hi) {
                    stack[sp++] = i;
                    stack[sp++] = hi;
                }
                hi = pivot;
            } else {
                if (lo < pivot) {
                    stack[sp++] = lo;
                    stack[sp++] = pivot;
                }
                lo = i;
            }
        }
    }
    for (i = 1; i < n; i++) {
        if (data[i - 1] > data[i]) {
            printf("NOT SORTED\n");
            return 1;
        }
    }
    printf("sorted %d numbers, median %d\n", n, data[n / 2]);
    return 0;
}
"""

CAL_SOURCE = r"""
char month_name[144];
int month_days[12];

int day_of_week(int y, int m, int d) {
    int t;
    if (m < 3) {
        y--;
        m += 12;
    }
    t = (d + 13 * (m + 1) / 5 + y + y / 4 - y / 100 + y / 400) % 7;
    /* Zeller yields 0=Saturday; shift so 0=Sunday for the layout. */
    return (t + 6) % 7;
}

int leap(int y) {
    if (y % 400 == 0)
        return 1;
    if (y % 100 == 0)
        return 0;
    if (y % 4 == 0)
        return 1;
    return 0;
}

int init_tables() {
    strcpy(&month_name[0], "January");
    strcpy(&month_name[12], "February");
    strcpy(&month_name[24], "March");
    strcpy(&month_name[36], "April");
    strcpy(&month_name[48], "May");
    strcpy(&month_name[60], "June");
    strcpy(&month_name[72], "July");
    strcpy(&month_name[84], "August");
    strcpy(&month_name[96], "September");
    strcpy(&month_name[108], "October");
    strcpy(&month_name[120], "November");
    strcpy(&month_name[132], "December");
    month_days[0] = 31; month_days[1] = 28; month_days[2] = 31;
    month_days[3] = 30; month_days[4] = 31; month_days[5] = 30;
    month_days[6] = 31; month_days[7] = 31; month_days[8] = 30;
    month_days[9] = 31; month_days[10] = 30; month_days[11] = 31;
    return 0;
}

int print_month(int year, int month) {
    int first, days, day, cell;
    printf("    %s %d\n", &month_name[month * 12], year);
    puts("Su Mo Tu We Th Fr Sa");
    days = month_days[month];
    if (month == 1 && leap(year))
        days = 29;
    first = day_of_week(year, month + 1, 1);
    cell = 0;
    while (cell < first) {
        printf("   ");
        cell++;
    }
    for (day = 1; day <= days; day++) {
        printf("%2d ", day);
        cell++;
        if (cell == 7) {
            putchar('\n');
            cell = 0;
        }
    }
    if (cell != 0)
        putchar('\n');
    putchar('\n');
    return 0;
}

int main() {
    int month, year;
    init_tables();
    for (year = 1992; year <= 1993; year++)
        for (month = 0; month < 12; month++)
            print_month(year, month);
    return 0;
}
"""

BANNER_SOURCE = r"""
char glyphs[40][32];

int glyph_index(int c) {
    if (c >= 'A' && c <= 'Z')
        return c - 'A';
    if (c >= '0' && c <= '9')
        return 26 + c - '0';
    return 36;
}

int define(int slot, char *rows) {
    strcpy(&glyphs[slot][0], rows);
    return 0;
}

int init_font() {
    int i;
    for (i = 0; i < 40; i++)
        define(i, "#####*#   #*#   #*#   #*#####");
    define(0, " ### *#   #*#####*#   #*#   #");   /* A */
    define(4, "#####*#    *#### *#    *#####");   /* E */
    define(11, "#    *#    *#    *#    *#####");  /* L */
    define(14, " ### *#   #*#   #*#   #* ### ");  /* O */
    define(17, "#### *#   #*#### *# #  *#  ##");  /* R */
    define(18, " ####*#    * ### *    #*#### ");  /* S */
    define(19, "#####*  #  *  #  *  #  *  #  ");  /* T */
    define(26, " ### *#  ##*# # #*##  #* ### ");  /* 0 */
    define(27, "  #  * ##  *  #  *  #  *#####");  /* 1 */
    define(28, " ### *#   #*  ## * #   *#####");  /* 2 */
    define(35, " ####*#   #* ####*    #* ### ");  /* 9 */
    define(36, "     *     *     *     *     ");  /* space */
    return 0;
}

int main() {
    char word[64];
    int len, row, i, j, c, slot;
    init_font();
    len = 0;
    c = getchar();
    while (c != -1 && c != '\n' && len < 60) {
        word[len++] = c;
        c = getchar();
    }
    for (row = 0; row < 5; row++) {
        for (i = 0; i < len; i++) {
            slot = glyph_index(word[i]);
            j = row * 6;
            while (glyphs[slot][j] != '*' && glyphs[slot][j] != 0) {
                putchar(glyphs[slot][j]);
                j++;
            }
            putchar(' ');
        }
        putchar('\n');
    }
    return 0;
}
"""

OD_SOURCE = r"""
int main() {
    int buf[8];
    int c, count, offset, i;
    offset = 0;
    count = 0;
    c = getchar();
    while (c != -1) {
        buf[count++] = c;
        if (count == 8) {
            printf("%07o ", offset);
            for (i = 0; i < 8; i++)
                printf(" %03o", buf[i]);
            putchar('\n');
            offset += 8;
            count = 0;
        }
        c = getchar();
    }
    if (count > 0) {
        printf("%07o ", offset);
        for (i = 0; i < count; i++)
            printf(" %03o", buf[i]);
        putchar('\n');
        offset += count;
    }
    printf("%07o\n", offset);
    return 0;
}
"""

GREP_SOURCE = r"""
char pattern[64];
char line[256];

/* Match pattern (supports ^, $, ., *) against text, grep-style. */
int match_here(char *pat, char *text);

int match_star(int c, char *pat, char *text) {
    do {
        if (match_here(pat, text))
            return 1;
    } while (*text != 0 && (*text++ == c || c == '.'));
    return 0;
}

int match_here(char *pat, char *text) {
    if (*pat == 0)
        return 1;
    if (pat[1] == '*')
        return match_star(*pat, pat + 2, text);
    if (*pat == '$' && pat[1] == 0)
        return *text == 0;
    if (*text != 0 && (*pat == '.' || *pat == *text))
        return match_here(pat + 1, text + 1);
    return 0;
}

int match(char *pat, char *text) {
    if (*pat == '^')
        return match_here(pat + 1, text);
    do {
        if (match_here(pat, text))
            return 1;
    } while (*text++ != 0);
    return 0;
}

int main() {
    int c, len, matched, lineno;
    /* First input line is the pattern, the rest is searched. */
    len = 0;
    c = getchar();
    while (c != -1 && c != '\n' && len < 63) {
        pattern[len++] = c;
        c = getchar();
    }
    pattern[len] = 0;
    matched = 0;
    lineno = 0;
    len = 0;
    c = getchar();
    while (c != -1) {
        if (c == '\n') {
            line[len] = 0;
            lineno++;
            if (match(pattern, line)) {
                matched++;
                printf("%d:%s\n", lineno, line);
            }
            len = 0;
        } else if (len < 255) {
            line[len++] = c;
        }
        c = getchar();
    }
    printf("%d matching lines\n", matched);
    return 0;
}
"""

SORT_SOURCE = r"""
char text[6000];
char *lines[400];

int compare_lines(char *a, char *b) {
    while (*a != 0 && *a == *b) {
        a++;
        b++;
    }
    return *a - *b;
}

int main() {
    int c, nlines, used, i, gap, j;
    char *t;
    nlines = 0;
    used = 0;
    lines[0] = &text[0];
    c = getchar();
    while (c != -1 && used < 5998 && nlines < 399) {
        if (c == '\n') {
            text[used++] = 0;
            nlines++;
            lines[nlines] = &text[used];
        } else {
            text[used++] = c;
        }
        c = getchar();
    }
    /* Shell sort the line pointers. */
    gap = 1;
    while (gap < nlines)
        gap = gap * 3 + 1;
    while (gap > 0) {
        for (i = gap; i < nlines; i++) {
            t = lines[i];
            j = i;
            while (j >= gap && compare_lines(lines[j - gap], t) > 0) {
                lines[j] = lines[j - gap];
                j -= gap;
            }
            lines[j] = t;
        }
        gap = gap / 3;
    }
    for (i = 0; i < nlines; i++)
        puts(lines[i]);
    return 0;
}
"""

COMPACT_SOURCE = r"""
/* File compression in the spirit of compact(1): adaptive order-0 model
   with a move-to-front coder and run-length packing of the code stream. */
int freq[256];
int order[256];
char input[8000];
int output_bits;

int mtf_encode(int c) {
    int i, rank, prev, cur;
    rank = 0;
    for (i = 0; i < 256; i++) {
        if (order[i] == c) {
            rank = i;
            break;
        }
    }
    /* Move to front. */
    prev = order[0];
    order[0] = c;
    for (i = 1; i <= rank; i++) {
        cur = order[i];
        order[i] = prev;
        prev = cur;
    }
    return rank;
}

int code_length(int rank) {
    int bits;
    bits = 1;
    while (rank > 0) {
        bits += 2;
        rank = rank / 2;
    }
    return bits;
}

int main() {
    int n, i, c, rank, run, total;
    for (i = 0; i < 256; i++) {
        order[i] = i;
        freq[i] = 0;
    }
    n = 0;
    c = getchar();
    while (c != -1 && n < 7999) {
        input[n++] = c;
        freq[c]++;
        c = getchar();
    }
    total = 0;
    run = 0;
    for (i = 0; i < n; i++) {
        rank = mtf_encode(input[i] & 255);
        if (rank == 0) {
            run++;
        } else {
            if (run > 0) {
                total += code_length(run) + 2;
                run = 0;
            }
            total += code_length(rank);
        }
    }
    if (run > 0)
        total += code_length(run) + 2;
    output_bits = total;
    printf("in %d bytes out %d bytes (%d%%)\n",
           n, (total + 7) / 8, (total + 7) / 8 * 100 / n);
    return 0;
}
"""

DEROFF_SOURCE = r"""
/* Remove nroff constructs: drop request lines starting with '.' and strip
   font escapes of the form \fB ... \fP (and \fI, \fR). */
int main() {
    int c, at_line_start, dropping;
    at_line_start = 1;
    dropping = 0;
    c = getchar();
    while (c != -1) {
        if (at_line_start && c == '.') {
            dropping = 1;
        }
        if (dropping) {
            if (c == '\n') {
                dropping = 0;
                at_line_start = 1;
            }
            c = getchar();
            continue;
        }
        if (c == '\\') {
            c = getchar();
            if (c == 'f') {
                c = getchar();  /* swallow the font letter */
                c = getchar();
                at_line_start = 0;
                continue;
            }
            putchar('\\');
        }
        putchar(c);
        at_line_start = c == '\n';
        c = getchar();
    }
    return 0;
}
"""

MINCOST_SOURCE = r"""
/* VLSI circuit partitioning by pairwise-exchange improvement (a small
   Kernighan/Lin-flavoured mincost partitioner on a synthetic netlist). */
int adj[48][48];
int side[48];
int nnodes;

int cut_cost() {
    int i, j, cost;
    cost = 0;
    for (i = 0; i < nnodes; i++)
        for (j = i + 1; j < nnodes; j++)
            if (adj[i][j] != 0 && side[i] != side[j])
                cost += adj[i][j];
    return cost;
}

int gain(int a, int b) {
    int i, g;
    g = 0;
    for (i = 0; i < nnodes; i++) {
        if (i != a && i != b) {
            if (adj[a][i] != 0) {
                if (side[i] == side[a])
                    g -= adj[a][i];
                else
                    g += adj[a][i];
            }
            if (adj[b][i] != 0) {
                if (side[i] == side[b])
                    g -= adj[b][i];
                else
                    g += adj[b][i];
            }
        }
    }
    if (adj[a][b] != 0)
        g -= 2 * adj[a][b];
    return g;
}

int main() {
    int i, j, seed, best, improved, pass, a, b;
    nnodes = 48;
    seed = 31415;
    for (i = 0; i < nnodes; i++) {
        for (j = i + 1; j < nnodes; j++) {
            seed = seed * 1103515245 + 12345;
            if (((seed >> 16) & 7) == 0) {
                adj[i][j] = 1 + ((seed >> 8) & 3);
                adj[j][i] = adj[i][j];
            }
        }
        side[i] = i % 2;
    }
    best = cut_cost();
    pass = 0;
    improved = 1;
    while (improved && pass < 4) {
        improved = 0;
        pass++;
        for (a = 0; a < nnodes; a++) {
            if (side[a] != 0)
                continue;
            for (b = 0; b < nnodes; b++) {
                if (side[b] != 1)
                    continue;
                if (gain(a, b) > 0) {
                    side[a] = 1;
                    side[b] = 0;
                    improved = 1;
                    a = a;  /* keep scanning from the swapped node */
                    break;
                }
            }
        }
    }
    printf("initial pass done: cut %d after %d passes\n", cut_cost(), pass);
    return 0;
}
"""


def _build_programs() -> Dict[str, BenchmarkProgram]:
    programs = [
        BenchmarkProgram(
            "banner",
            "Utilities",
            "banner generator",
            BANNER_SOURCE,
            b"TOREROS 2019\n",
        ),
        BenchmarkProgram("cal", "Utilities", "calendar generator", CAL_SOURCE),
        BenchmarkProgram(
            "compact",
            "Utilities",
            "file compression",
            COMPACT_SOURCE,
            _lcg_text(3, 6000),
        ),
        BenchmarkProgram(
            "deroff",
            "Utilities",
            "remove nroff constructs",
            DEROFF_SOURCE,
            _nroff_text(),
        ),
        BenchmarkProgram(
            "grep",
            "Utilities",
            "pattern search",
            GREP_SOURCE,
            b"ab.*s\n" + _lcg_text(11, 5000),
        ),
        BenchmarkProgram(
            "od", "Utilities", "octal dump", OD_SOURCE, _lcg_text(5, 3000)
        ),
        BenchmarkProgram(
            "sort",
            "Utilities",
            "sort or merge files",
            SORT_SOURCE,
            _lcg_text(17, 4500),
        ),
        BenchmarkProgram(
            "wc", "Utilities", "word count", WC_SOURCE, _lcg_text(23, 9000)
        ),
        BenchmarkProgram(
            "bubblesort", "Benchmarks", "sort numbers", BUBBLESORT_SOURCE
        ),
        BenchmarkProgram(
            "matmult", "Benchmarks", "matrix multiplication", MATMULT_SOURCE
        ),
        BenchmarkProgram("sieve", "Benchmarks", "iteration", SIEVE_SOURCE),
        BenchmarkProgram(
            "queens", "Benchmarks", "8-queens problem", QUEENS_SOURCE
        ),
        BenchmarkProgram(
            "quicksort",
            "Benchmarks",
            "sort numbers (iterative)",
            QUICKSORT_SOURCE,
        ),
        BenchmarkProgram(
            "mincost", "User code", "VLSI circuit partitioning", MINCOST_SOURCE
        ),
    ]
    return {program.name: program for program in programs}


PROGRAMS: Dict[str, BenchmarkProgram] = _build_programs()


def program_names() -> list:
    """The 14 program names in the paper's Table 5 row order."""
    return [
        "cal",
        "quicksort",
        "wc",
        "grep",
        "sort",
        "od",
        "mincost",
        "bubblesort",
        "matmult",
        "banner",
        "sieve",
        "compact",
        "queens",
        "deroff",
    ]
