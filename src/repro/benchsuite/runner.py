"""Compile-optimize-measure pipeline shared by every experiment.

Since the parallel execution layer landed this module is a thin facade
over :mod:`repro.exec`: every measurement goes through
:func:`repro.exec.runner.execute_cell`, results are memoized in-process
per (program, target, configuration, trace) — the Tables 4, 5 and 6
harnesses reuse the same runs — and an optional persistent
:class:`~repro.exec.cache.ResultCache` survives across processes.

``run_matrix`` is the bulk entry point: it fans the whole
(program × target × configuration) cross-product out over a
:class:`~repro.exec.runner.ParallelRunner` and seeds the in-process memo,
so the per-cell accessors below become cache hits afterwards.

Traced measurements (``trace=True``, the Table-6 input) carry an RLE
:class:`~repro.ease.trace.CompressedTrace` — it iterates as raw global
block ids for compatibility, and the single-pass multi-configuration
cache engine (:func:`repro.cache.simulate_multi_cache`) consumes its
compressed records directly, so memoized envelopes stay small and the
four-size sweep fast-forwards steady-state loops.
"""

from __future__ import annotations

import os
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..cfg.block import Program
from ..core.replication import Policy
from ..ease.measure import Measurement
from ..exec import CellResult, CellSpec, ParallelRunner, ResultCache, execute_cell
from ..frontend.codegen import compile_c
from ..opt.driver import OptimizationConfig, optimize_program
from ..targets.machine import Machine, get_target
from .programs import PROGRAMS, program_names

__all__ = [
    "run_benchmark",
    "run_suite",
    "run_matrix",
    "compile_benchmark",
    "clear_cache",
    "persistent_cache_from_env",
]

_measure_cache: Dict[tuple, Measurement] = {}

_POLICY_NAMES = {
    Policy.SHORTEST: "shortest",
    Policy.FAVOR_RETURNS: "returns",
    Policy.FAVOR_LOOPS: "loops",
}


def clear_cache() -> None:
    """Drop all memoized measurements (frees their traces)."""
    _measure_cache.clear()


def persistent_cache_from_env() -> Optional[ResultCache]:
    """The on-disk cache named by ``REPRO_CACHE_DIR``, if set."""
    cache_dir = os.environ.get("REPRO_CACHE_DIR")
    return ResultCache(cache_dir) if cache_dir else None


def compile_benchmark(
    name: str,
    target: Machine,
    replication: str = "none",
    policy: Policy = Policy.SHORTEST,
    max_rtls: Optional[int] = None,
) -> Program:
    """Compile + optimize one benchmark program for one configuration."""
    try:
        bench = PROGRAMS[name]
    except KeyError:
        raise KeyError(
            f"unknown benchmark {name!r}; expected one of {program_names()}"
        ) from None
    program = compile_c(bench.source)
    config = OptimizationConfig(
        replication=replication, policy=policy, max_rtls=max_rtls
    )
    optimize_program(program, target, config)
    return program


def _spec_for(
    name: str,
    target: str,
    replication: str,
    policy: Policy,
    max_rtls: Optional[int],
    trace: bool,
) -> CellSpec:
    if name not in PROGRAMS:
        raise KeyError(
            f"unknown benchmark {name!r}; expected one of {program_names()}"
        )
    return CellSpec(
        program=name,
        target=target,
        replication=replication,
        policy=_POLICY_NAMES.get(policy, "shortest"),
        max_rtls=max_rtls,
        trace=trace,
    )


def _memo_key(spec: CellSpec) -> tuple:
    return (
        spec.program,
        spec.target,
        spec.replication,
        spec.policy,
        spec.max_rtls,
        spec.trace,
    )


def _unwrap(result: CellResult) -> Measurement:
    if not result.ok:
        raise RuntimeError(
            f"benchmark cell {result.spec.label} failed:\n{result.error}"
        )
    return result.measurement


def run_benchmark(
    name: str,
    target: str = "sparc",
    replication: str = "none",
    policy: Policy = Policy.SHORTEST,
    max_rtls: Optional[int] = None,
    trace: bool = False,
    use_cache: bool = True,
    cache: Optional[ResultCache] = None,
) -> Measurement:
    """Measure one benchmark under one configuration (memoized).

    ``cache`` (or the ``REPRO_CACHE_DIR`` environment variable) adds a
    persistent on-disk layer underneath the in-process memo.
    """
    from ..obs import active as _active_observer

    spec = _spec_for(name, target, replication, policy, max_rtls, trace)
    key = _memo_key(spec)
    if use_cache and key in _measure_cache:
        return _measure_cache[key]
    disk = cache if cache is not None else persistent_cache_from_env()
    result: Optional[CellResult] = None
    if disk is not None:
        result = disk.get_spec(spec)
    if result is None:
        # single_flight dedups against concurrent processes computing
        # the same cold key (and publishes the envelope on success).
        from ..exec.singleflight import single_flight

        result, fresh = single_flight(disk, spec, execute_cell)
        # Fresh run: fold the cell's observability snapshot into the
        # ambient observer (cache hits describe an earlier run's work).
        observer = _active_observer()
        if fresh and observer is not None and result.obs is not None:
            observer.merge_snapshot(result.obs)
    measurement = _unwrap(result)
    if use_cache:
        _measure_cache[key] = measurement
    return measurement


def run_suite(
    target: str = "sparc",
    replication: str = "none",
    names: Optional[Iterable[str]] = None,
    trace: bool = False,
) -> Dict[str, Measurement]:
    """Measure the whole test set (Table 3) under one configuration."""
    selected = list(names) if names is not None else program_names()
    return {
        name: run_benchmark(name, target, replication, trace=trace)
        for name in selected
    }


def run_matrix(
    names: Optional[Sequence[str]] = None,
    targets: Sequence[str] = ("sparc", "m68020"),
    configs: Sequence[str] = ("none", "loops", "jumps"),
    trace: bool = False,
    workers: Optional[int] = None,
    cache: Optional[ResultCache] = None,
    use_memo: bool = True,
    server: Optional[str] = None,
) -> Dict[Tuple[str, str, str], Measurement]:
    """Measure the full (target × config × program) cross-product.

    Fans out over ``workers`` processes (``None`` = one per core,
    ``0``/``1`` = inline) through the optional persistent ``cache``,
    and seeds the in-process memo so later :func:`run_benchmark` calls
    on the same cells are free.  ``server`` routes the cells through a
    running ``repro serve`` daemon instead (falling back to the local
    path when none is listening).  Returns ``{(target, config, name):
    Measurement}`` — the shape the Table 4/5/6 harnesses consume.
    Raises ``RuntimeError`` listing every failed cell, if any.
    """
    selected: List[str] = list(names) if names is not None else program_names()
    order: List[Tuple[str, str, str]] = [
        (target, config, name)
        for target in targets
        for config in configs
        for name in selected
    ]
    specs = [
        _spec_for(name, target, config, Policy.SHORTEST, None, trace)
        for (target, config, name) in order
    ]
    disk = cache if cache is not None else persistent_cache_from_env()

    measurements: Dict[Tuple[str, str, str], Measurement] = {}
    pending_specs: List[CellSpec] = []
    pending_keys: List[Tuple[str, str, str]] = []
    for matrix_key, spec in zip(order, specs):
        memo_key = _memo_key(spec)
        if use_memo and memo_key in _measure_cache:
            measurements[matrix_key] = _measure_cache[memo_key]
        else:
            pending_specs.append(spec)
            pending_keys.append(matrix_key)

    from ..api import measure_cells

    cell_results = measure_cells(
        pending_specs, workers=workers, cache=disk, server=server
    )
    failures: List[str] = []
    for matrix_key, result in zip(pending_keys, cell_results):
        if not result.ok:
            failures.append(f"{result.spec.label}:\n{result.error}")
            continue
        measurements[matrix_key] = result.measurement
        if use_memo:
            _measure_cache[_memo_key(result.spec)] = result.measurement
    if failures:
        raise RuntimeError(
            f"{len(failures)} matrix cell(s) failed:\n" + "\n".join(failures)
        )
    return measurements
