"""Compile-optimize-measure pipeline shared by every experiment.

Results are memoized per (program, target, configuration, trace) because
the benchmark harnesses for Tables 4, 5 and 6 all reuse the same runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Optional

from ..cfg.block import Program
from ..core.replication import Policy
from ..ease.measure import Measurement, measure_program
from ..frontend.codegen import compile_c
from ..opt.driver import OptimizationConfig, optimize_program
from ..targets.machine import Machine, get_target
from .programs import PROGRAMS, program_names

__all__ = ["run_benchmark", "run_suite", "compile_benchmark", "clear_cache"]

_measure_cache: Dict[tuple, Measurement] = {}


def clear_cache() -> None:
    """Drop all memoized measurements (frees their traces)."""
    _measure_cache.clear()


def compile_benchmark(
    name: str,
    target: Machine,
    replication: str = "none",
    policy: Policy = Policy.SHORTEST,
    max_rtls: Optional[int] = None,
) -> Program:
    """Compile + optimize one benchmark program for one configuration."""
    try:
        bench = PROGRAMS[name]
    except KeyError:
        raise KeyError(
            f"unknown benchmark {name!r}; expected one of {program_names()}"
        ) from None
    program = compile_c(bench.source)
    config = OptimizationConfig(
        replication=replication, policy=policy, max_rtls=max_rtls
    )
    optimize_program(program, target, config)
    return program


def run_benchmark(
    name: str,
    target: str = "sparc",
    replication: str = "none",
    policy: Policy = Policy.SHORTEST,
    max_rtls: Optional[int] = None,
    trace: bool = False,
    use_cache: bool = True,
) -> Measurement:
    """Measure one benchmark under one configuration (memoized)."""
    key = (name, target, replication, policy, max_rtls, trace)
    if use_cache and key in _measure_cache:
        return _measure_cache[key]
    machine = get_target(target)
    program = compile_benchmark(name, machine, replication, policy, max_rtls)
    measurement = measure_program(
        program, machine, stdin=PROGRAMS[name].stdin, trace=trace
    )
    if use_cache:
        _measure_cache[key] = measurement
    return measurement


def run_suite(
    target: str = "sparc",
    replication: str = "none",
    names: Optional[Iterable[str]] = None,
    trace: bool = False,
) -> Dict[str, Measurement]:
    """Measure the whole test set (Table 3) under one configuration."""
    selected = list(names) if names is not None else program_names()
    return {
        name: run_benchmark(name, target, replication, trace=trace)
        for name in selected
    }
