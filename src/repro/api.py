"""High-level convenience API.

One call compiles (or looks up a Table-3 benchmark), optimizes under a
paper configuration, executes, and measures::

    from repro import compile_and_measure

    result = compile_and_measure("sieve", target="sparc", replication="jumps")
    print(result.measurement.dynamic_insns, result.measurement.dynamic_jumps)

    result = compile_and_measure(
        "int main() { return 6 * 7; }", target="m68020"
    )
    print(result.measurement.exit_code)  # 42
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

from .benchsuite.programs import PROGRAMS
from .cfg.block import Program
from .core.replication import Policy, ReplicationStats
from .ease.measure import Measurement, measure_program
from .frontend.codegen import compile_c
from .opt.driver import OptimizationConfig, optimize_program
from .targets.machine import Machine, get_target

__all__ = [
    "CompilationResult",
    "compile_and_measure",
    "measure_cells",
    "POLICIES",
]

POLICIES = {
    "shortest": Policy.SHORTEST,
    "returns": Policy.FAVOR_RETURNS,
    "loops": Policy.FAVOR_LOOPS,
}


@dataclass
class CompilationResult:
    """Everything produced by :func:`compile_and_measure`."""

    program: Program
    target: Machine
    config: OptimizationConfig
    replication_stats: ReplicationStats
    measurement: Measurement
    #: Translation-validation report (``None`` when verification was off).
    verification: Optional[dict] = None

    @property
    def output(self) -> bytes:
        return self.measurement.output

    @property
    def exit_code(self) -> int:
        return self.measurement.exit_code


def measure_cells(
    specs,
    workers: Optional[int] = None,
    cache=None,
    server: Optional[str] = None,
    on_result=None,
    fallback: bool = True,
):
    """Execute matrix cells — through a daemon, or locally.

    The one entry point the CLI, benchmarks and experiments share:

    * ``server`` names a ``repro serve`` Unix socket; cells are
      submitted there and coalesce with whatever the daemon is already
      computing.  When no daemon is listening and ``fallback`` is true,
      execution silently degrades to the local path (a note lands on
      the result list's ``served`` attribute either way).
    * locally, cells fan out over a
      :class:`~repro.exec.runner.ParallelRunner` (``workers`` processes
      through the optional persistent ``cache``).

    Returns the list of :class:`~repro.exec.envelope.CellResult` in
    input order; the list additionally carries a ``served`` bool
    attribute naming which path ran.
    """
    from .exec import ParallelRunner

    class _Results(list):
        served = False

    if server is not None:
        from .serve import ServeClient, ServeUnavailable

        client = ServeClient.try_connect(server)
        if client is None and not fallback:
            raise ServeUnavailable(f"no daemon at {server}")
        if client is not None:
            with client:
                results = _Results(
                    client.run_matrix(list(specs), on_result=on_result)
                )
            results.served = True
            return results
    runner = ParallelRunner(workers=workers, cache=cache)
    return _Results(runner.run(list(specs), on_result=on_result))


def compile_and_measure(
    source_or_benchmark: str,
    target: Union[str, Machine] = "sparc",
    replication: str = "none",
    stdin: Optional[bytes] = None,
    trace: bool = False,
    policy: Union[str, Policy] = Policy.SHORTEST,
    max_rtls: Optional[int] = None,
    max_steps: int = 200_000_000,
    spm_engine: Optional[str] = None,
    verify: Optional[str] = None,
    ease_engine: Optional[str] = None,
    overrides: Optional[dict] = None,
) -> CompilationResult:
    """Compile, optimize, run and measure one program.

    :param source_or_benchmark: mini-C source text, or the name of one of
        the 14 Table-3 benchmarks (e.g. ``"wc"``).
    :param target: ``"m68020"`` or ``"sparc"`` (or a Machine instance).
    :param replication: ``"none"`` (the paper's SIMPLE), ``"loops"`` or
        ``"jumps"``.
    :param stdin: program input; defaults to the benchmark's workload for
        named benchmarks, empty otherwise.
    :param trace: record the block-level trace for cache simulation.
    :param policy: JUMPS step-2 heuristic: "shortest", "returns", "loops".
    :param max_rtls: §6 bound on replication sequence length.
    :param spm_engine: step-1 shortest-path engine ("lazy" / "dense");
        both produce identical decisions, "dense" is the differential oracle.
    :param verify: translation-validation mode: ``"off"``, ``"sanitize"``
        (structural invariants after every pass) or ``"full"`` (sanitize
        plus the differential execution oracle with pass bisection);
        ``None`` defers to the ``REPRO_VERIFY`` environment variable.
        Failures raise :class:`repro.verify.VerificationError`.
    :param ease_engine: measurement execution engine: ``"compiled"``
        (RTL compiled to Python code objects) or ``"interp"`` (the
        closure interpreter, the differential reference); ``None``
        defers to ``REPRO_EASE_ENGINE``, then the compiled default.
        Both engines are parity-gated to identical results.
    :param overrides: per-function replication tunings — a mapping of
        function name to :class:`repro.opt.driver.FunctionTuning`, as
        produced by the autotuner (see :mod:`repro.tune`); unnamed
        functions use the global ``policy``/``max_rtls`` above.
    """
    if source_or_benchmark in PROGRAMS:
        bench = PROGRAMS[source_or_benchmark]
        source = bench.source
        if stdin is None:
            stdin = bench.stdin
    else:
        source = source_or_benchmark
    if stdin is None:
        stdin = b""
    if isinstance(target, str):
        target = get_target(target)
    if isinstance(policy, str):
        policy = POLICIES[policy]
    program = compile_c(source)
    config = OptimizationConfig(
        replication=replication,
        policy=policy,
        max_rtls=max_rtls,
        spm_engine=spm_engine,
        overrides=dict(overrides) if overrides else {},
    )
    from .verify.verifier import Verifier, resolve_mode

    verify_mode = resolve_mode(verify)
    verifier = (
        Verifier(verify_mode, inputs=[stdin]) if verify_mode != "off" else None
    )
    stats = optimize_program(program, target, config, verifier=verifier)
    measurement = measure_program(
        program,
        target,
        stdin=stdin,
        trace=trace,
        max_steps=max_steps,
        engine=ease_engine,
    )
    return CompilationResult(
        program,
        target,
        config,
        stats,
        measurement,
        verification=verifier.report() if verifier is not None else None,
    )
